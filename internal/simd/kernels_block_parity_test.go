package simd

// Parity suite for the BLOCK kernels. The contract is stronger than the
// per-series suite's: besides dispatched-vs-portable bit-identity, every
// out[i] must be bit-identical to a loop of per-series sequential calls
// (LookupAccumEASeq at bsf=+Inf) — the block kernels are a batching of the
// per-series sequential path, not a numerically different kernel. The
// corpus straddles every stripe boundary of both tiers (n around 4/8
// multiples for AVX2/AVX-512 stripes, l around 8 multiples for position
// groups) and injects ±Inf table entries and NaN query lanes.

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

func TestBlockImplReported(t *testing.T) {
	impl := BlockImpl()
	if impl != "avx512" && impl != "avx2" && impl != "portable" {
		t.Fatalf("BlockImpl() = %q, want avx512, avx2 or portable", impl)
	}
	t.Logf("block kernel implementation: %s (per-series: %s)", impl, Impl())
}

// TestBlockImplMatchesEnv pins the block-kernel dispatch tier when
// WANT_SIMD_BLOCK is set, the same guard TestImplMatchesEnv provides for
// the per-series kernels. CI's AVX-512 lane sets WANT_SIMD_BLOCK=avx512
// only after probing the runner, and the SOFA_NOAVX512 lane sets
// WANT_SIMD_BLOCK=avx2 to prove the pin works.
func TestBlockImplMatchesEnv(t *testing.T) {
	want := os.Getenv("WANT_SIMD_BLOCK")
	if want == "" {
		t.Skip("WANT_SIMD_BLOCK not set")
	}
	if got := BlockImpl(); got != want {
		t.Fatalf("BlockImpl() = %q, want %q (WANT_SIMD_BLOCK): block dispatch regressed", got, want)
	}
}

// blockNs and blockLs straddle every stripe boundary: n crosses the AVX2
// stripe of 4 and the AVX-512 stripe of 8 (1,7,8,9 exercise a lone masked
// tail stripe; 63,64,65 exercise many full stripes plus each tail kind),
// l crosses the 8-position group boundary.
var blockNs = []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65}
var blockLs = []int{1, 7, 8, 9, 16, 17, 24, 33}

// lookupBlockCase builds an n×l SoA block plus a flat table with ±Inf
// entries planted at looked-up positions.
func lookupBlockCase(rng *rand.Rand, n, l, alpha int) (words []byte, table []float64) {
	words = make([]byte, n*l)
	table = make([]float64, l*alpha)
	for i := range words {
		words[i] = byte(rng.Intn(alpha))
	}
	for i := range table {
		table[i] = rng.Float64() * 10
	}
	if n >= 2 && l >= 2 {
		// ±Inf at positions hit by different series/stripes.
		table[0*alpha+int(words[0])] = math.Inf(1)
		table[1*alpha+int(words[(n-1)*l+1])] = math.Inf(-1)
	}
	return
}

func TestLookupAccumBlockParityMatchesSeqLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	inf := math.Inf(1)
	for _, alpha := range []int{2, 256} {
		for _, n := range blockNs {
			for _, l := range blockLs {
				words, table := lookupBlockCase(rng, n, l, alpha)
				// Oracle: per-series sequential calls at bsf=+Inf (never
				// abandoned, so each is the exact sequential sum).
				want := make([]float64, n)
				for i := 0; i < n; i++ {
					want[i] = LookupAccumEASeq(words[i*l:(i+1)*l], table, alpha, inf)
				}
				got := make([]float64, n)
				for _, bsf := range []float64{0, want[n/2], inf} {
					for i := range got {
						got[i] = math.NaN() // detect unwritten entries
					}
					k := LookupAccumBlockEA(words, n, table, alpha, got, bsf)
					wantK := 0
					for i := 0; i < n; i++ {
						if !eqBits(got[i], want[i]) {
							t.Fatalf("alpha=%d n=%d l=%d series %d: block %v (%#x) != seq loop %v (%#x)",
								alpha, n, l, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
						}
						if want[i] <= bsf {
							wantK++
						}
					}
					if k != wantK {
						t.Fatalf("alpha=%d n=%d l=%d bsf=%v: survivors %d, want %d", alpha, n, l, bsf, k, wantK)
					}
					// Portable entry point must agree exactly too.
					got2 := make([]float64, n)
					k2 := LookupAccumBlockEAPortable(words, n, table, alpha, got2, bsf)
					for i := range got2 {
						if !eqBits(got2[i], want[i]) {
							t.Fatalf("alpha=%d n=%d l=%d series %d: portable block diverged from seq loop", alpha, n, l, i)
						}
					}
					if k2 != k {
						t.Fatalf("alpha=%d n=%d l=%d: portable survivors %d != dispatched %d", alpha, n, l, k2, k)
					}
				}
			}
		}
	}
}

// lbdBlockCase reuses lbdCase's structurally valid interval problem and
// adds n-1 more words over the same breakpoints.
func lbdBlockCase(rng *rand.Rand, n, l, alpha int) (words []byte, qr, lower, upper, weights []float64) {
	word, qr, lower, upper, weights := lbdCase(rng, l, alpha)
	words = make([]byte, n*l)
	copy(words, word)
	for i := l; i < n*l; i++ {
		words[i] = byte(rng.Intn(alpha))
	}
	return
}

func TestLBDGatherBlockParityExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	inf := math.Inf(1)
	for _, alpha := range []int{2, 4, 256} {
		for _, n := range blockNs {
			for _, l := range blockLs {
				words, qr, lower, upper, weights := lbdBlockCase(rng, n, l, alpha)
				if l > 2 {
					qr[l/2] = math.NaN() // NaN query lanes must select zero in every lane
				}
				want := make([]float64, n)
				wantKInf := LBDGatherBlockEAPortable(words, n, qr, lower, upper, weights, alpha, want, inf)
				if wantKInf != n {
					t.Fatalf("alpha=%d n=%d l=%d: portable survivors at +Inf = %d, want n=%d", alpha, n, l, wantKInf, n)
				}
				got := make([]float64, n)
				for _, bsf := range []float64{0, want[n/2], inf} {
					k := LBDGatherBlockEA(words, n, qr, lower, upper, weights, alpha, got, bsf)
					wantK := 0
					for i := 0; i < n; i++ {
						if !eqBits(got[i], want[i]) {
							t.Fatalf("alpha=%d n=%d l=%d series %d: dispatched %v (%#x) != portable %v (%#x)",
								alpha, n, l, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
						}
						if want[i] <= bsf {
							wantK++
						}
					}
					if k != wantK {
						t.Fatalf("alpha=%d n=%d l=%d bsf=%v: survivors %d, want %d", alpha, n, l, bsf, k, wantK)
					}
				}
				// Cross-check against the per-series gather kernel at +Inf.
				// That kernel reduces positions through a lane tree, so only
				// approximate agreement is possible (the block kernels'
				// canonical order is the sequential chain); a real logic bug
				// would diverge by far more than reassociation slack.
				for i := 0; i < n; i++ {
					seq := LBDGatherEAPortable(words[i*l:(i+1)*l], qr, lower, upper, weights, alpha, inf)
					if diff := math.Abs(want[i] - seq); diff > 1e-9*(math.Abs(seq)+1) {
						t.Fatalf("alpha=%d n=%d l=%d series %d: block %v vs per-series gather %v (diff %v)", alpha, n, l, i, want[i], seq, diff)
					}
				}
			}
		}
	}
}

// TestBlockKernelContractPanics pins the shape validation: silent
// out-of-bounds reads in asm would be memory corruption, so violations
// must panic in the Go wrapper before dispatch.
func TestBlockKernelContractPanics(t *testing.T) {
	table := make([]float64, 4*8)
	words := make([]byte, 8)
	out := make([]float64, 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("indivisible len(words)", func() {
		LookupAccumBlockEA(words[:7], 2, table, 8, out, 0)
	})
	mustPanic("short out", func() {
		LookupAccumBlockEA(words, 2, table, 8, out[:1], 0)
	})
	mustPanic("negative n", func() {
		LookupAccumBlockEA(words, -1, table, 8, out, 0)
	})
	mustPanic("short table", func() {
		LookupAccumBlockEA(words, 2, table[:31], 8, out, 0)
	})
	mustPanic("symbol out of range", func() {
		bad := []byte{0, 9, 0, 0, 0, 0, 0, 0}
		LookupAccumBlockEA(bad, 2, table, 8, out, 0)
	})
	qr := make([]float64, 4)
	w := make([]float64, 4)
	lo := make([]float64, 4*8)
	hi := make([]float64, 4*8)
	mustPanic("short qr", func() {
		LBDGatherBlockEA(words, 2, qr[:3], lo, hi, w, 8, out, 0)
	})
	mustPanic("short lower", func() {
		LBDGatherBlockEA(words, 2, qr, lo[:31], hi, w, 8, out, 0)
	})
	// n == 0 must be a no-op, not a panic.
	if k := LookupAccumBlockEA(nil, 0, table, 8, nil, 0); k != 0 {
		t.Fatalf("n=0: survivors %d, want 0", k)
	}
}

func FuzzLookupAccumBlockParity(f *testing.F) {
	f.Add(int64(1), 9, 16, 8, 10.0)
	f.Add(int64(2), 64, 7, 3, math.Inf(1))
	f.Add(int64(3), 1, 1, 1, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, n, l, alphaBits int, bsf float64) {
		if n < 1 || n > 200 || l < 1 || l > 64 || alphaBits < 1 || alphaBits > 8 {
			return
		}
		alpha := 1 << alphaBits
		rng := rand.New(rand.NewSource(seed))
		words, table := lookupBlockCase(rng, n, l, alpha)
		for i := range table {
			switch rng.Intn(20) {
			case 0:
				table[i] = math.Inf(1)
			case 1:
				table[i] = math.Inf(-1)
			}
		}
		got := make([]float64, n)
		want := make([]float64, n)
		k := LookupAccumBlockEA(words, n, table, alpha, got, bsf)
		kWant := LookupAccumBlockEAPortable(words, n, table, alpha, want, bsf)
		if k != kWant {
			t.Fatalf("survivor mismatch: n=%d l=%d alpha=%d bsf=%v: %d != %d", n, l, alpha, bsf, k, kWant)
		}
		for i := range got {
			if !eqBits(got[i], want[i]) {
				t.Fatalf("parity violation: n=%d l=%d alpha=%d series %d", n, l, alpha, i)
			}
			if seq := LookupAccumEASeq(words[i*l:(i+1)*l], table, alpha, math.Inf(1)); !eqBits(want[i], seq) {
				t.Fatalf("seq-loop violation: n=%d l=%d alpha=%d series %d", n, l, alpha, i)
			}
		}
	})
}

func FuzzLBDGatherBlockParity(f *testing.F) {
	f.Add(int64(1), 9, 16, 8, 10.0)
	f.Add(int64(2), 65, 9, 2, 0.0)
	f.Add(int64(3), 8, 33, 1, math.Inf(1))
	f.Fuzz(func(t *testing.T, seed int64, n, l, alphaBits int, bsf float64) {
		if n < 1 || n > 200 || l < 1 || l > 64 || alphaBits < 1 || alphaBits > 8 {
			return
		}
		alpha := 1 << alphaBits
		rng := rand.New(rand.NewSource(seed))
		words, qr, lower, upper, weights := lbdBlockCase(rng, n, l, alpha)
		if l > 1 && seed%3 == 0 {
			qr[rng.Intn(l)] = math.NaN()
		}
		got := make([]float64, n)
		want := make([]float64, n)
		k := LBDGatherBlockEA(words, n, qr, lower, upper, weights, alpha, got, bsf)
		kWant := LBDGatherBlockEAPortable(words, n, qr, lower, upper, weights, alpha, want, bsf)
		if k != kWant {
			t.Fatalf("survivor mismatch: n=%d l=%d alpha=%d bsf=%v: %d != %d", n, l, alpha, bsf, k, kWant)
		}
		for i := range got {
			if !eqBits(got[i], want[i]) {
				t.Fatalf("parity violation: n=%d l=%d alpha=%d series %d", n, l, alpha, i)
			}
		}
	})
}

// BenchmarkBlockKernels compares the block entry points against the
// equivalent loop of per-series calls on a leaf-sized block (n=256, l=16,
// alpha=256 — the shapes the index refinement path actually runs).
func BenchmarkBlockKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const n, l, alpha = 256, 16, 256
	words, table := lookupBlockCase(rng, n, l, alpha)
	_, qr, lower, upper, weights := lbdBlockCase(rng, 1, l, alpha)
	out := make([]float64, n)
	inf := math.Inf(1)
	perSeries := func(v float64) float64 { return v / n }

	b.Run("lookup/block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LookupAccumBlockEA(words, n, table, alpha, out, inf)
		}
		b.ReportMetric(perSeries(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "ns/series")
	})
	b.Run("lookup/block-portable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LookupAccumBlockEAPortable(words, n, table, alpha, out, inf)
		}
		b.ReportMetric(perSeries(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "ns/series")
	})
	b.Run("lookup/per-series-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < n; s++ {
				out[s] = LookupAccumEASeq(words[s*l:(s+1)*l], table, alpha, inf)
			}
		}
		b.ReportMetric(perSeries(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "ns/series")
	})
	b.Run("gather/block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LBDGatherBlockEA(words, n, qr, lower, upper, weights, alpha, out, inf)
		}
		b.ReportMetric(perSeries(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "ns/series")
	})
	b.Run("gather/block-portable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LBDGatherBlockEAPortable(words, n, qr, lower, upper, weights, alpha, out, inf)
		}
		b.ReportMetric(perSeries(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "ns/series")
	})
	b.Run("gather/per-series-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < n; s++ {
				out[s] = LBDGatherEA(words[s*l:(s+1)*l], qr, lower, upper, weights, alpha, inf)
			}
		}
		b.ReportMetric(perSeries(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "ns/series")
	})
}
