package simd

// Parity suite: the dispatched kernels must be BIT-IDENTICAL — equal
// float64 bit patterns, not merely close — to the portable references on
// every input. Under the default build on amd64 this pits the AVX2
// assembly against pure Go; under -tags noasm (or on other architectures)
// both sides are the reference and the suite pins the canonical semantics.
// CI runs it in both variants so neither path can rot.
//
// The corpus sweeps lengths 1..257 (every block-boundary straddle), all
// slice offsets 0..7 (unaligned loads), ±Inf table entries, NaN queries,
// and early-abandon bounds from 0 through +Inf.

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"
)

// eqBits reports bit-identity, treating any-NaN==any-NaN as equal only for
// identical bit patterns (the kernels are deterministic, so even NaN
// payloads must agree).
func eqBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestImplReported(t *testing.T) {
	impl := Impl()
	if impl != "avx2" && impl != "portable" {
		t.Fatalf("Impl() = %q, want avx2 or portable", impl)
	}
	t.Logf("active kernel implementation: %s", impl)
}

// TestImplMatchesEnv pins the dispatch decision when WANT_SIMD is set: CI's
// amd64 parity job exports WANT_SIMD=avx2 so the asm-vs-portable comparison
// can never silently degrade to portable-vs-portable (e.g. a broken CPUID
// probe would otherwise keep every parity and smoke step green while
// shipping the slow path to all users).
func TestImplMatchesEnv(t *testing.T) {
	want := os.Getenv("WANT_SIMD")
	if want == "" {
		t.Skip("WANT_SIMD not set")
	}
	if got := Impl(); got != want {
		t.Fatalf("Impl() = %q, want %q (WANT_SIMD): kernel dispatch regressed", got, want)
	}
}

func TestSquaredEDEAParityExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	// Backing arrays with slack so every offset 0..7 can be tested.
	const maxN, slack = 257, 8
	rawA := make([]float64, maxN+slack)
	rawB := make([]float64, maxN+slack)
	for i := range rawA {
		rawA[i] = rng.NormFloat64()
		rawB[i] = rng.NormFloat64()
	}
	bounds := []float64{0, 0.5, 3, 50, 1e6, math.Inf(1)}
	for n := 1; n <= maxN; n++ {
		off := n % slack
		a := rawA[off : off+n]
		b := rawB[off : off+n]
		for _, bound := range bounds {
			got := SquaredEDEA(a, b, bound)
			want := SquaredEDEAPortable(a, b, bound)
			if !eqBits(got, want) {
				t.Fatalf("n=%d off=%d bound=%v: asm %v (%#x) != portable %v (%#x)",
					n, off, bound, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

func TestDotParityExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	const maxN, slack = 257, 8
	rawA := make([]float64, maxN+slack)
	rawB := make([]float64, maxN+slack)
	for i := range rawA {
		rawA[i] = rng.NormFloat64()
		rawB[i] = rng.NormFloat64()
	}
	for n := 1; n <= maxN; n++ {
		off := (n * 3) % slack
		a := rawA[off : off+n]
		b := rawB[off : off+n]
		got := Dot(a, b)
		want := DotPortable(a, b)
		if !eqBits(got, want) {
			t.Fatalf("n=%d off=%d: asm %v != portable %v", n, off, got, want)
		}
	}
}

// lbdCase builds a random but structurally valid LBD problem: sorted
// breakpoints per position (lower[0] = -Inf, upper[alpha-1] = +Inf, shared
// inner bounds), nonneg weights, symbols < alpha.
func lbdCase(rng *rand.Rand, l, alpha int) (word []byte, qr, lower, upper, weights []float64) {
	word = make([]byte, l)
	qr = make([]float64, l)
	weights = make([]float64, l)
	lower = make([]float64, l*alpha)
	upper = make([]float64, l*alpha)
	for j := 0; j < l; j++ {
		word[j] = byte(rng.Intn(alpha))
		qr[j] = rng.NormFloat64() * 2
		weights[j] = rng.Float64() * 3
		bps := make([]float64, alpha-1)
		for i := range bps {
			bps[i] = rng.NormFloat64()
		}
		for i := 1; i < len(bps); i++ { // insertion sort: alpha is small here
			for k := i; k > 0 && bps[k] < bps[k-1]; k-- {
				bps[k], bps[k-1] = bps[k-1], bps[k]
			}
		}
		for sym := 0; sym < alpha; sym++ {
			if sym == 0 {
				lower[j*alpha+sym] = math.Inf(-1)
			} else {
				lower[j*alpha+sym] = bps[sym-1]
			}
			if sym == alpha-1 {
				upper[j*alpha+sym] = math.Inf(1)
			} else {
				upper[j*alpha+sym] = bps[sym]
			}
		}
	}
	return
}

func TestLBDGatherParityExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	bounds := []float64{0, 0.1, 2, 100, math.Inf(1)}
	for _, alpha := range []int{2, 4, 16, 256} {
		for l := 1; l <= 40; l++ {
			word, qr, lower, upper, weights := lbdCase(rng, l, alpha)
			if l > 2 {
				qr[l/2] = math.NaN() // NaN query lanes must select zero in both paths
			}
			for _, bsf := range bounds {
				got := LBDGatherEA(word, qr, lower, upper, weights, alpha, bsf)
				want := LBDGatherEAPortable(word, qr, lower, upper, weights, alpha, bsf)
				if !eqBits(got, want) {
					t.Fatalf("alpha=%d l=%d bsf=%v: asm %v (%#x) != portable %v (%#x)",
						alpha, l, bsf, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

func TestLookupAccumParityExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	bounds := []float64{0, 0.1, 2, 100, math.Inf(1)}
	for _, alpha := range []int{2, 8, 256} {
		for l := 1; l <= 40; l++ {
			word := make([]byte, l)
			table := make([]float64, l*alpha)
			for j := range word {
				word[j] = byte(rng.Intn(alpha))
			}
			for i := range table {
				table[i] = rng.Float64() * 10
			}
			// Inject ±Inf entries, including at looked-up positions: the
			// gather must propagate them identically (Inf sums, and
			// -Inf + +Inf = NaN through the same reduction tree).
			if l >= 2 {
				table[0*alpha+int(word[0])] = math.Inf(1)
				table[1*alpha+int(word[1])] = math.Inf(-1)
			}
			for _, bsf := range bounds {
				got := LookupAccumEA(word, table, alpha, bsf)
				want := LookupAccumEAPortable(word, table, alpha, bsf)
				if !eqBits(got, want) {
					t.Fatalf("alpha=%d l=%d bsf=%v: asm %v (%#x) != portable %v (%#x)",
						alpha, l, bsf, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// Property: for any data and bound, SquaredEDEA returns either the exact
// blocked distance (when <= bound) or a certificate > bound, and the
// sequential-vs-dispatched paths stay bit-identical.
func TestSquaredEDEAParityProperty(t *testing.T) {
	f := func(seed int64, boundRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 1e3
			b[i] = rng.NormFloat64() * 1e3
		}
		bound := math.Abs(boundRaw)
		if math.IsNaN(bound) {
			bound = 1
		}
		return eqBits(SquaredEDEA(a, b, bound), SquaredEDEAPortable(a, b, bound))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random LBD problems (including degenerate alpha=2) stay
// bit-identical at random bounds.
func TestLBDGatherParityProperty(t *testing.T) {
	f := func(seed int64, bsfRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := []int{2, 4, 8, 32, 64, 128, 256}[rng.Intn(7)]
		l := 1 + rng.Intn(64)
		word, qr, lower, upper, weights := lbdCase(rng, l, alpha)
		bsf := math.Abs(bsfRaw)
		if math.IsNaN(bsf) {
			bsf = math.Inf(1)
		}
		return eqBits(
			LBDGatherEA(word, qr, lower, upper, weights, alpha, bsf),
			LBDGatherEAPortable(word, qr, lower, upper, weights, alpha, bsf))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The dispatched ED kernel must satisfy the early-abandon contract against
// an order-independent oracle: a result <= bound equals the exact distance
// to tree-reassociation rounding; a result > bound implies the exact
// distance also exceeds bound (up to the same rounding slack).
func TestSquaredEDEAContract(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a := make([]float64, n)
		b := make([]float64, n)
		var exact float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			d := a[i] - b[i]
			exact += d * d
		}
		bound := rng.Float64() * exact * 2
		got := SquaredEDEA(a, b, bound)
		tol := 1e-9 * (exact + 1)
		if got <= bound {
			if math.Abs(got-exact) > tol {
				t.Fatalf("n=%d: under-bound result %v differs from exact %v", n, got, exact)
			}
		} else if exact <= bound-tol {
			t.Fatalf("n=%d: certificate %v > bound %v but exact %v <= bound", n, got, bound, exact)
		}
	}
}

// Native fuzz targets: the go fuzzer mutates raw byte/length material and
// the harness rebuilds structurally valid kernel inputs from it.

func FuzzSquaredEDEAParity(f *testing.F) {
	f.Add(int64(1), 17, 1.0)
	f.Add(int64(2), 256, math.Inf(1))
	f.Add(int64(3), 16, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, n int, bound float64) {
		if n < 1 || n > 1024 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if !eqBits(SquaredEDEA(a, b, bound), SquaredEDEAPortable(a, b, bound)) {
			t.Fatalf("parity violation: n=%d bound=%v", n, bound)
		}
	})
}

func FuzzLBDGatherParity(f *testing.F) {
	f.Add(int64(1), 16, 8, 10.0)
	f.Add(int64(2), 9, 2, 0.0)
	f.Add(int64(3), 33, 1, math.Inf(1))
	f.Fuzz(func(t *testing.T, seed int64, l, alphaBits int, bsf float64) {
		if l < 1 || l > 128 || alphaBits < 1 || alphaBits > 8 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		word, qr, lower, upper, weights := lbdCase(rng, l, 1<<alphaBits)
		got := LBDGatherEA(word, qr, lower, upper, weights, 1<<alphaBits, bsf)
		want := LBDGatherEAPortable(word, qr, lower, upper, weights, 1<<alphaBits, bsf)
		if !eqBits(got, want) {
			t.Fatalf("parity violation: l=%d alpha=%d bsf=%v", l, 1<<alphaBits, bsf)
		}
	})
}

func FuzzLookupAccumParity(f *testing.F) {
	f.Add(int64(1), 16, 8, 10.0)
	f.Add(int64(2), 7, 3, math.Inf(1))
	f.Fuzz(func(t *testing.T, seed int64, l, alphaBits int, bsf float64) {
		if l < 1 || l > 128 || alphaBits < 1 || alphaBits > 8 {
			return
		}
		alpha := 1 << alphaBits
		rng := rand.New(rand.NewSource(seed))
		word := make([]byte, l)
		table := make([]float64, l*alpha)
		for j := range word {
			word[j] = byte(rng.Intn(alpha))
		}
		for i := range table {
			switch rng.Intn(20) {
			case 0:
				table[i] = math.Inf(1)
			case 1:
				table[i] = math.Inf(-1)
			default:
				table[i] = rng.Float64() * 10
			}
		}
		if !eqBits(LookupAccumEA(word, table, alpha, bsf), LookupAccumEAPortable(word, table, alpha, bsf)) {
			t.Fatalf("parity violation: l=%d alpha=%d bsf=%v", l, alpha, bsf)
		}
	})
}
