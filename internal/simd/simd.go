// Package simd provides the hot-loop distance kernels of the SOFA
// reproduction (paper Section IV-H) behind a runtime dispatch layer:
//
//   - kernels.go defines the exported kernel API (SquaredEDEA, Dot,
//     LBDGatherEA, LookupAccumEA) and the portable pure-Go references that
//     fix each kernel's canonical bit-level semantics;
//   - kernels_amd64.s implements the same semantics with AVX2+FMA assembly
//     (VFMADD accumulation, VGATHERQPD bound gathers, VCMPPD/VBLENDVPD
//     three-way selects); cpuid_amd64.go probes the hardware at init and
//     dispatch_amd64.go routes each call. Assembly and reference are
//     bit-identical on every input (kernels_parity_test.go), so results do
//     not depend on the platform. Build with -tags noasm, or set
//     SOFA_NOSIMD in the environment, to force the portable path.
//
// This file retains the original 8-lane Vec emulation of the AVX intrinsic
// vocabulary: fixed-width vectors, comparison masks, blends and horizontal
// reductions expressed as scalar lane loops. It remains the substrate of
// the emulated ablation kernel (emulated.go) that the benchmarks compare
// the real assembly against, and of tests that pin the mask/blend algebra.
package simd

// Width is the number of float64 lanes per vector, matching an AVX-512
// register of 64-bit floats (or two AVX2 registers).
const Width = 8

// Vec is an 8-lane float64 vector.
type Vec [Width]float64

// Mask is an 8-lane boolean mask produced by comparisons.
type Mask [Width]bool

// Load fills a vector from the first Width elements of x. Missing elements
// (len(x) < Width) are zero-filled, mirroring a masked load.
func Load(x []float64) Vec {
	var v Vec
	n := len(x)
	if n > Width {
		n = Width
	}
	for i := 0; i < n; i++ {
		v[i] = x[i]
	}
	return v
}

// Broadcast returns a vector with all lanes set to s.
func Broadcast(s float64) Vec {
	var v Vec
	for i := range v {
		v[i] = s
	}
	return v
}

// Add returns a + b lane-wise.
func Add(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] + b[i]
	}
	return r
}

// Sub returns a - b lane-wise.
func Sub(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] - b[i]
	}
	return r
}

// Mul returns a * b lane-wise.
func Mul(a, b Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i] * b[i]
	}
	return r
}

// FMA returns a*b + c lane-wise (fused multiply-add shape).
func FMA(a, b, c Vec) Vec {
	var r Vec
	for i := range r {
		r[i] = a[i]*b[i] + c[i]
	}
	return r
}

// CmpLT returns the mask a < b.
func CmpLT(a, b Vec) Mask {
	var m Mask
	for i := range m {
		m[i] = a[i] < b[i]
	}
	return m
}

// CmpGT returns the mask a > b.
func CmpGT(a, b Vec) Mask {
	var m Mask
	for i := range m {
		m[i] = a[i] > b[i]
	}
	return m
}

// CmpGE returns the mask a >= b.
func CmpGE(a, b Vec) Mask {
	var m Mask
	for i := range m {
		m[i] = a[i] >= b[i]
	}
	return m
}

// And returns the lane-wise conjunction of two masks.
func And(a, b Mask) Mask {
	var m Mask
	for i := range m {
		m[i] = a[i] && b[i]
	}
	return m
}

// AndNot returns a && !b lane-wise.
func AndNot(a, b Mask) Mask {
	var m Mask
	for i := range m {
		m[i] = a[i] && !b[i]
	}
	return m
}

// Not returns the lane-wise negation of m.
func Not(m Mask) Mask {
	var r Mask
	for i := range r {
		r[i] = !m[i]
	}
	return r
}

// Blend selects a[i] where m[i] is true and b[i] otherwise — the masked
// select the paper uses to resolve the UPPER/LOWER/ZERO branches without
// conditional jumps.
func Blend(m Mask, a, b Vec) Vec {
	var r Vec
	for i := range r {
		if m[i] {
			r[i] = a[i]
		} else {
			r[i] = b[i]
		}
	}
	return r
}

// MaskedAccumulate adds a[i]*a[i] to the running sum for every true lane;
// it is the fused "square and horizontally reduce under mask" step of the
// LBD kernel.
func MaskedAccumulate(m Mask, a Vec) float64 {
	var s float64
	for i := range a {
		if m[i] {
			s += a[i] * a[i]
		}
	}
	return s
}

// Sum horizontally reduces the vector.
func Sum(v Vec) float64 {
	// Pairwise tree reduction, mirroring HADD sequences.
	s01 := v[0] + v[1]
	s23 := v[2] + v[3]
	s45 := v[4] + v[5]
	s67 := v[6] + v[7]
	return (s01 + s23) + (s45 + s67)
}

// Any reports whether any lane of the mask is set.
func Any(m Mask) bool {
	for _, b := range m {
		if b {
			return true
		}
	}
	return false
}

// All reports whether every lane of the mask is set.
func All(m Mask) bool {
	for _, b := range m {
		if !b {
			return false
		}
	}
	return true
}
