package simd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoad(t *testing.T) {
	v := Load([]float64{1, 2, 3})
	want := Vec{1, 2, 3, 0, 0, 0, 0, 0}
	if v != want {
		t.Errorf("partial load: got %v", v)
	}
	long := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	v = Load(long)
	for i := 0; i < Width; i++ {
		if v[i] != long[i] {
			t.Errorf("lane %d: got %v", i, v[i])
		}
	}
}

func TestBroadcast(t *testing.T) {
	v := Broadcast(2.5)
	for i := range v {
		if v[i] != 2.5 {
			t.Errorf("lane %d: got %v", i, v[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	a := Vec{1, 2, 3, 4, 5, 6, 7, 8}
	b := Vec{8, 7, 6, 5, 4, 3, 2, 1}
	if got := Add(a, b); got != Broadcast(9) {
		t.Errorf("Add: %v", got)
	}
	if got := Sub(a, a); got != (Vec{}) {
		t.Errorf("Sub: %v", got)
	}
	if got := Mul(a, Broadcast(2)); got != (Vec{2, 4, 6, 8, 10, 12, 14, 16}) {
		t.Errorf("Mul: %v", got)
	}
	if got := FMA(a, Broadcast(0), b); got != b {
		t.Errorf("FMA with zero multiplier: %v", got)
	}
}

func TestCompareAndBlend(t *testing.T) {
	a := Vec{1, 5, 3, 7, 2, 8, 4, 6}
	b := Broadcast(4)
	lt := CmpLT(a, b)
	wantLT := Mask{true, false, true, false, true, false, false, false}
	if lt != wantLT {
		t.Errorf("CmpLT: %v", lt)
	}
	gt := CmpGT(a, b)
	ge := CmpGE(a, b)
	if gt[6] || !ge[6] { // a[6]==4: not >, but >=
		t.Error("CmpGT/CmpGE boundary semantics wrong")
	}
	blended := Blend(lt, a, b)
	for i := range blended {
		want := b[i]
		if lt[i] {
			want = a[i]
		}
		if blended[i] != want {
			t.Errorf("Blend lane %d: got %v want %v", i, blended[i], want)
		}
	}
}

func TestMaskLogic(t *testing.T) {
	a := Mask{true, true, false, false, true, false, true, false}
	b := Mask{true, false, true, false, true, true, false, false}
	and := And(a, b)
	if and != (Mask{true, false, false, false, true, false, false, false}) {
		t.Errorf("And: %v", and)
	}
	andnot := AndNot(a, b)
	if andnot != (Mask{false, true, false, false, false, false, true, false}) {
		t.Errorf("AndNot: %v", andnot)
	}
	if Not(a) != (Mask{false, false, true, true, false, true, false, true}) {
		t.Errorf("Not: %v", Not(a))
	}
	if !Any(a) || Any(Mask{}) {
		t.Error("Any wrong")
	}
	if All(a) || !All(Mask{true, true, true, true, true, true, true, true}) {
		t.Error("All wrong")
	}
}

func TestSum(t *testing.T) {
	if got := Sum(Vec{1, 2, 3, 4, 5, 6, 7, 8}); got != 36 {
		t.Errorf("Sum: %v", got)
	}
	if got := Sum(Vec{}); got != 0 {
		t.Errorf("Sum zero: %v", got)
	}
}

func TestMaskedAccumulate(t *testing.T) {
	v := Vec{1, 2, 3, 4, 0, 0, 0, 0}
	m := Mask{true, false, true, false, true, true, true, true}
	if got := MaskedAccumulate(m, v); got != 1+9 {
		t.Errorf("MaskedAccumulate: %v", got)
	}
}

// Property: for any vectors, the three-way masked blend used by the LBD
// kernel (UPPER/LOWER/ZERO) selects exactly one branch per lane and the
// blended result equals a scalar reference implementation.
func TestThreeWayBlendProperty(t *testing.T) {
	f := func(q, lo, hi [Width]float64) bool {
		vq, vlo, vhi := Vec(q), Vec(lo), Vec(hi)
		// Normalize so lo <= hi per lane.
		for i := range vlo {
			if vlo[i] > vhi[i] {
				vlo[i], vhi[i] = vhi[i], vlo[i]
			}
		}
		below := CmpLT(vq, vlo)
		above := CmpGT(vq, vhi)
		distLo := Sub(vlo, vq)
		distHi := Sub(vq, vhi)
		d := Blend(below, distLo, Blend(above, distHi, Vec{}))
		for i := 0; i < Width; i++ {
			var want float64
			switch {
			case vq[i] < vlo[i]:
				want = vlo[i] - vq[i]
			case vq[i] > vhi[i]:
				want = vq[i] - vhi[i]
			default:
				want = 0
			}
			if d[i] != want {
				return false
			}
			if below[i] && above[i] {
				return false // branches must be mutually exclusive
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum equals the naive lane sum.
func TestSumProperty(t *testing.T) {
	f := func(raw [Width]float64) bool {
		var x [Width]float64
		for i, v := range raw {
			// Map arbitrary floats into a well-conditioned range so the
			// pairwise and sequential sums agree to rounding error.
			x[i] = math.Remainder(v, 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		var want float64
		for _, v := range x {
			want += v
		}
		got := Sum(Vec(x))
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		mag := 1.0
		for _, v := range x {
			if v > mag {
				mag = v
			} else if -v > mag {
				mag = -v
			}
		}
		return diff <= 1e-9*mag*Width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
