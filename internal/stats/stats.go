// Package stats provides the statistical primitives used across the SOFA
// reproduction: moments, quantiles, histogram binning (equi-width and
// equi-depth, as used by SFA's Multiple Coefficient Binning), correlation,
// and the rank statistics behind the paper's critical-difference diagrams
// (Fig. 15).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// MeanStd returns the mean and the population standard deviation of x.
// For len(x) == 0 it returns (0, 0).
func MeanStd(x []float64) (mean, std float64) {
	if len(x) == 0 {
		return 0, 0
	}
	mean = Mean(x)
	var ss float64
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(x)))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	_, std := MeanStd(x)
	return std * std
}

// Median returns the median of x without modifying it.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics, without modifying x.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of x. It panics on empty input.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// EquiWidthBreakpoints computes the numBins-1 interior breakpoints dividing
// [min(x), max(x)] into bins of equal width. If all values coincide, the
// breakpoints collapse onto that value (every symbol maps to the same bin,
// which keeps the lower bound trivially valid at distance 0).
func EquiWidthBreakpoints(x []float64, numBins int) ([]float64, error) {
	if numBins < 2 {
		return nil, fmt.Errorf("stats: numBins must be >= 2, got %d", numBins)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("stats: cannot bin empty data")
	}
	min, max := MinMax(x)
	bps := make([]float64, numBins-1)
	width := (max - min) / float64(numBins)
	for i := range bps {
		bps[i] = min + width*float64(i+1)
	}
	return bps, nil
}

// EquiDepthBreakpoints computes the numBins-1 interior breakpoints such that
// each bin holds (approximately) the same number of samples — the original
// SFA quantization from Schäfer & Högqvist (EDBT 2012).
func EquiDepthBreakpoints(x []float64, numBins int) ([]float64, error) {
	if numBins < 2 {
		return nil, fmt.Errorf("stats: numBins must be >= 2, got %d", numBins)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("stats: cannot bin empty data")
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	bps := make([]float64, numBins-1)
	for i := range bps {
		q := float64(i+1) / float64(numBins)
		bps[i] = quantileSorted(s, q)
	}
	return bps, nil
}

// BinIndex locates v within the bins delimited by the sorted interior
// breakpoints bps, returning a symbol in [0, len(bps)]. Bin k covers the
// half-open interval [bps[k-1], bps[k]): values below the first breakpoint
// map to 0 and values >= the last breakpoint map to len(bps).
func BinIndex(bps []float64, v float64) int {
	lo, hi := 0, len(bps)
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= bps[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// x and y. It returns an error when lengths differ or fewer than two pairs
// are supplied, and 0 when either side has zero variance.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 pairs, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// NormalQuantile returns the quantile function (inverse CDF) of the standard
// Normal distribution, used to derive the fixed iSAX breakpoints. It is
// implemented via the stdlib inverse error function.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// Ranks assigns fractional ranks (1 = smallest) to x, averaging ties — the
// convention used for critical-difference diagrams.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// MeanRanks computes, for a score matrix scores[dataset][method], the mean
// rank of each method across datasets. lowerIsBetter selects the ranking
// direction (rank 1 goes to the best method).
func MeanRanks(scores [][]float64, lowerIsBetter bool) ([]float64, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("stats: MeanRanks needs at least one dataset row")
	}
	m := len(scores[0])
	sums := make([]float64, m)
	for _, row := range scores {
		if len(row) != m {
			return nil, fmt.Errorf("stats: ragged score matrix")
		}
		vals := append([]float64(nil), row...)
		if !lowerIsBetter {
			for i := range vals {
				vals[i] = -vals[i]
			}
		}
		r := Ranks(vals)
		for i, v := range r {
			sums[i] += v
		}
	}
	for i := range sums {
		sums[i] /= float64(len(scores))
	}
	return sums, nil
}

// WilcoxonSignedRank runs the two-sided Wilcoxon signed-rank test on paired
// samples and returns an approximate p-value using the Normal approximation
// (adequate for the >=17 datasets used in the paper's Fig. 15). Pairs with
// zero difference are dropped.
func WilcoxonSignedRank(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: Wilcoxon length mismatch %d vs %d", len(a), len(b))
	}
	var diffs []float64
	for i := range a {
		if d := a[i] - b[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 1 {
		return 1, nil // identical samples: no evidence of difference
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := Ranks(abs)
	var wPlus float64
	for i, d := range diffs {
		if d > 0 {
			wPlus += ranks[i]
		}
	}
	mu := float64(n*(n+1)) / 4
	sigma := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	if sigma == 0 {
		return 1, nil
	}
	z := (wPlus - mu) / sigma
	p := 2 * (1 - normalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return p, nil
}

func normalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// HolmCliques performs Wilcoxon-Holm post-hoc analysis over a score matrix
// scores[dataset][method] and returns, for every method pair (i<j), whether
// the null hypothesis "no difference" is retained at level alpha after Holm
// correction. Retained pairs form the horizontal cliques in a
// critical-difference diagram.
func HolmCliques(scores [][]float64, alpha float64) (retained [][2]int, err error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("stats: empty score matrix")
	}
	m := len(scores[0])
	type pairP struct {
		i, j int
		p    float64
	}
	var pairs []pairP
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			ai := make([]float64, len(scores))
			bj := make([]float64, len(scores))
			for d, row := range scores {
				ai[d] = row[i]
				bj[d] = row[j]
			}
			p, werr := WilcoxonSignedRank(ai, bj)
			if werr != nil {
				return nil, werr
			}
			pairs = append(pairs, pairP{i, j, p})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].p < pairs[b].p })
	k := len(pairs)
	rejected := make(map[[2]int]bool)
	for idx, pr := range pairs {
		adj := alpha / float64(k-idx)
		if pr.p < adj {
			rejected[[2]int{pr.i, pr.j}] = true
		} else {
			break // Holm: once one is retained, all later (larger p) are too
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if !rejected[[2]int{i, j}] {
				retained = append(retained, [2]int{i, j})
			}
		}
	}
	return retained, nil
}

// Describe summarizes x with the five statistics the figure harness prints
// for box plots (Fig. 10): min, 25th, median, 75th, max.
type Summary struct {
	Min, Q25, Median, Q75, Max float64
	Mean                       float64
	N                          int
}

// Summarize computes a five-number summary plus mean.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return Summary{
		Min:    s[0],
		Q25:    quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q75:    quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// Skewness returns the sample skewness of x (0 for symmetric data).
func Skewness(x []float64) float64 {
	mean, std := MeanStd(x)
	if std == 0 || len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		d := (v - mean) / std
		s += d * d * d
	}
	return s / float64(len(x))
}

// Kurtosis returns the excess kurtosis of x (0 for a Normal distribution).
func Kurtosis(x []float64) float64 {
	mean, std := MeanStd(x)
	if std == 0 || len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		d := (v - mean) / std
		s += d * d * d * d
	}
	return s/float64(len(x)) - 3
}
