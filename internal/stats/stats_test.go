package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Errorf("got (%v,%v), want (5,2)", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty: got (%v,%v)", m, s)
	}
}

func TestVarianceConstantSeries(t *testing.T) {
	if v := Variance([]float64{3, 3, 3, 3}); v != 0 {
		t.Errorf("constant series variance = %v, want 0", v)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd: got %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even: got %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty: got %v", got)
	}
	// Median must not reorder the input.
	x := []float64{9, 1, 5}
	Median(x)
	if x[0] != 9 || x[1] != 1 || x[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -2, 7, 0})
	if min != -2 || max != 7 {
		t.Errorf("got (%v,%v)", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty input")
		}
	}()
	MinMax(nil)
}

func TestEquiWidthBreakpoints(t *testing.T) {
	bps, err := EquiWidthBreakpoints([]float64{0, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 5, 7.5}
	for i := range want {
		if !almostEqual(bps[i], want[i], 1e-12) {
			t.Errorf("bps[%d] = %v, want %v", i, bps[i], want[i])
		}
	}
	if _, err := EquiWidthBreakpoints(nil, 4); err == nil {
		t.Error("expected error on empty data")
	}
	if _, err := EquiWidthBreakpoints([]float64{1}, 1); err == nil {
		t.Error("expected error on numBins < 2")
	}
}

func TestEquiWidthConstantData(t *testing.T) {
	bps, err := EquiWidthBreakpoints([]float64{5, 5, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bps {
		if b != 5 {
			t.Errorf("constant data breakpoint %v, want 5", b)
		}
	}
}

func TestEquiDepthBreakpoints(t *testing.T) {
	// 100 uniform values: quartile breakpoints near 25/50/75.
	x := make([]float64, 101)
	for i := range x {
		x[i] = float64(i)
	}
	bps, err := EquiDepthBreakpoints(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{25, 50, 75}
	for i := range want {
		if !almostEqual(bps[i], want[i], 1e-9) {
			t.Errorf("bps[%d] = %v, want %v", i, bps[i], want[i])
		}
	}
}

func TestBreakpointsAreSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	for _, numBins := range []int{2, 4, 16, 256} {
		for name, fn := range map[string]func([]float64, int) ([]float64, error){
			"EW": EquiWidthBreakpoints, "ED": EquiDepthBreakpoints,
		} {
			bps, err := fn(x, numBins)
			if err != nil {
				t.Fatal(err)
			}
			if len(bps) != numBins-1 {
				t.Fatalf("%s: got %d breakpoints, want %d", name, len(bps), numBins-1)
			}
			if !sort.Float64sAreSorted(bps) {
				t.Errorf("%s bins=%d: breakpoints not sorted", name, numBins)
			}
		}
	}
}

func TestBinIndex(t *testing.T) {
	bps := []float64{1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{
		{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.9, 2}, {3, 3}, {100, 3},
		{math.Inf(-1), 0}, {math.Inf(1), 3},
	}
	for _, c := range cases {
		if got := BinIndex(bps, c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: BinIndex(bps, v) always returns k such that v lies in
// [bps[k-1], bps[k]) under the half-open convention.
func TestBinIndexProperty(t *testing.T) {
	f := func(vals [8]float64, v float64) bool {
		bps := append([]float64(nil), vals[:]...)
		sort.Float64s(bps)
		k := BinIndex(bps, v)
		if k < 0 || k > len(bps) {
			return false
		}
		if k > 0 && v < bps[k-1] {
			return false
		}
		if k < len(bps) && v >= bps[k] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect correlation: got %v err %v", r, err)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect anti-correlation: got %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	r, err = Pearson(x, flat)
	if err != nil || r != 0 {
		t.Errorf("zero variance: got %v err %v", r, err)
	}
	if _, err := Pearson(x, y[:3]); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Pearson(x[:1], y[:1]); err == nil {
		t.Error("expected too-few-pairs error")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Phi(1)
		{0.9772498680518208, 2}, // Phi(2)
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("tails should be infinite")
	}
	// Symmetry.
	if got := NormalQuantile(0.25) + NormalQuantile(0.75); !almostEqual(got, 0, 1e-12) {
		t.Errorf("symmetry violated: %v", got)
	}
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{10, 20, 30})
	want := []float64{1, 2, 3}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks basic: got %v", r)
		}
	}
	// Ties average: {5, 5, 1} -> ranks {2.5, 2.5, 1}.
	r = Ranks([]float64{5, 5, 1})
	if r[0] != 2.5 || r[1] != 2.5 || r[2] != 1 {
		t.Errorf("tie handling: got %v", r)
	}
}

func TestMeanRanks(t *testing.T) {
	// Two datasets, three methods; method 0 always best (lowest).
	scores := [][]float64{
		{1, 2, 3},
		{1, 3, 2},
	}
	mr, err := MeanRanks(scores, true)
	if err != nil {
		t.Fatal(err)
	}
	if mr[0] != 1 || mr[1] != 2.5 || mr[2] != 2.5 {
		t.Errorf("got %v", mr)
	}
	// Higher-is-better flips the ranking.
	mr, _ = MeanRanks(scores, false)
	if mr[0] != 3 {
		t.Errorf("higher-is-better: got %v", mr)
	}
	if _, err := MeanRanks(nil, true); err == nil {
		t.Error("expected empty matrix error")
	}
	if _, err := MeanRanks([][]float64{{1, 2}, {1}}, true); err == nil {
		t.Error("expected ragged matrix error")
	}
}

func TestWilcoxonSignedRank(t *testing.T) {
	// Identical samples: p = 1.
	a := []float64{1, 2, 3, 4, 5}
	p, err := WilcoxonSignedRank(a, a)
	if err != nil || p != 1 {
		t.Errorf("identical: p=%v err=%v", p, err)
	}
	// Strong consistent difference across 20 pairs: small p.
	x := make([]float64, 20)
	y := make([]float64, 20)
	rng := rand.New(rand.NewSource(8))
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 5 + rng.Float64()
	}
	p, err = WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("strong difference: p=%v, want < 0.01", p)
	}
	if _, err := WilcoxonSignedRank(x, y[:5]); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestHolmCliques(t *testing.T) {
	// Methods 0 and 1 identical; method 2 much worse. Expect (0,1) retained,
	// (0,2) and (1,2) rejected.
	rng := rand.New(rand.NewSource(9))
	var scores [][]float64
	for d := 0; d < 25; d++ {
		base := rng.Float64()
		scores = append(scores, []float64{base, base + (rng.Float64()-0.5)*1e-9, base + 10 + rng.Float64()})
	}
	retained, err := HolmCliques(scores, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	has := func(i, j int) bool {
		for _, p := range retained {
			if p[0] == i && p[1] == j {
				return true
			}
		}
		return false
	}
	if !has(0, 1) {
		t.Error("expected (0,1) retained as indistinguishable")
	}
	if has(0, 2) || has(1, 2) {
		t.Errorf("expected method 2 to differ; retained=%v", retained)
	}
	if _, err := HolmCliques(nil, 0.05); err == nil {
		t.Error("expected empty matrix error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q25 != 2 || s.Q75 != 4 || s.Mean != 3 || s.N != 5 {
		t.Errorf("got %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty: got %+v", z)
	}
}

// Property: equi-depth bins on a large sample put roughly equal counts in
// every bin.
func TestEquiDepthBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 4000)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		const bins = 8
		bps, err := EquiDepthBreakpoints(x, bins)
		if err != nil {
			return false
		}
		counts := make([]int, bins)
		for _, v := range x {
			counts[BinIndex(bps, v)]++
		}
		for _, c := range counts {
			// Each bin should hold 500 +- 25% of the mass.
			if c < 350 || c > 650 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// Symmetric data: zero skew.
	sym := []float64{-2, -1, 0, 1, 2}
	if s := Skewness(sym); math.Abs(s) > 1e-12 {
		t.Errorf("symmetric skew %v", s)
	}
	// Right-skewed data: positive skew.
	skewed := []float64{0, 0, 0, 0, 10}
	if s := Skewness(skewed); s <= 0 {
		t.Errorf("right-skewed skew %v", s)
	}
	// Large Normal sample: excess kurtosis near 0.
	rng := rand.New(rand.NewSource(42))
	normal := make([]float64, 200000)
	for i := range normal {
		normal[i] = rng.NormFloat64()
	}
	if k := Kurtosis(normal); math.Abs(k) > 0.1 {
		t.Errorf("Normal kurtosis %v, want ~0", k)
	}
	// Heavy-tailed (exponential) sample: positive excess kurtosis.
	exp := make([]float64, 100000)
	for i := range exp {
		exp[i] = rng.ExpFloat64()
	}
	if k := Kurtosis(exp); k < 1 {
		t.Errorf("exponential kurtosis %v, want > 1", k)
	}
	if Skewness(nil) != 0 || Kurtosis(nil) != 0 {
		t.Error("empty input should report 0")
	}
	if Skewness([]float64{5, 5}) != 0 || Kurtosis([]float64{5, 5}) != 0 {
		t.Error("constant input should report 0")
	}
}
