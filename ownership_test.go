package repro

// TestSofaPublicOwnership pins the public boundary's ownership contract
// behaviorally: sofa.Search must COPY (its results survive any number of
// later queries on the same index, which cycle the pooled internal
// searchers), and only SearchInto may reuse memory — the caller's own
// buffer, overwritten by the next call exactly like append. The static side
// of the same contract — that every internal caller of the pooled-slice
// APIs has been audited by a human — is enforced by the retainaudit
// analyzer (internal/analysis), which replaced the old AST-walk audit in
// this file.

import (
	"context"
	"math/rand"
	"testing"

	"repro/sofa"
)

func TestSofaPublicOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := sofa.NewMatrix(400, 32)
	for i := 0; i < data.Len(); i++ {
		row := data.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	data.ZNormalizeAll()
	ix, err := sofa.Build(data, sofa.SampleRate(0.5), sofa.LeafSize(32))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	query := func() []float64 {
		q := make([]float64, 32)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		return q
	}

	res, err := ix.Search(ctx, sofa.Query{Series: query(), K: 8})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]sofa.Result(nil), res...)
	for i := 0; i < 30; i++ {
		if _, err := ix.Search(ctx, sofa.Query{Series: query(), K: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.SearchInto(ctx, sofa.Query{Series: query(), K: 8}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapshot {
		if res[i] != snapshot[i] {
			t.Fatalf("sofa.Search leaked a pooled slice: result %d mutated by later queries (%v != %v)", i, res[i], snapshot[i])
		}
	}

	// SearchInto, by contrast, documents overwrite semantics on the
	// caller's buffer — verify it aliases that buffer and nothing else.
	buf := make([]sofa.Result, 0, 8)
	r1, err := ix.SearchInto(ctx, sofa.Query{Series: query(), K: 8}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &buf[:1][0] {
		t.Fatal("SearchInto did not append into the caller's buffer")
	}
}
