package repro

// Pooled-slice retention audit (ROADMAP item): Searcher.Search and friends
// return a slice owned by the (possibly pooled) searcher and overwritten by
// its next query; stream callbacks receive worker-owned slices valid only
// for the callback's duration. A caller that retains such a slice across
// calls corrupts results silently under load, so every call site must be
// audited by a human once and then pinned here.
//
// This test walks the module's non-test sources, collects every call site
// of the owning-slice APIs (by selector name — deliberately over-inclusive:
// scan/flat Search methods return fresh slices, but auditing them costs one
// allowlist line and catches contract drift), and fails when a file gains
// a call that is not in the audited allowlist below. To clear a failure:
// read the new caller, verify it either consumes the results before the
// searcher's next query, copies them (append([]index.Result(nil), res...)),
// or only extracts scalars — then add the file:method pair with a one-line
// justification.

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/sofa"
)

// ownedSliceAPIs are the method names whose results alias caller-invisible
// pooled buffers (or, for NewStream, register callbacks that receive them).
// The public sofa package deliberately inverts the contract — sofa.Search
// results are caller-owned copies — but its method names stay in this map
// so every new call site is still read once by a human: the public
// SearchInto and the stream callbacks do alias reused memory.
var ownedSliceAPIs = map[string]bool{
	"Search":            true,
	"Search1":           true, // returns a value, but callers often switch to Search
	"SearchApproximate": true,
	"SearchEpsilon":     true,
	"SearchPlan":        true, // appends into caller dst — worker-owned when dst is pooled scratch
	"SearchInto":        true, // public escape hatch: results overwritten by the next call with the same buf
	"NewStream":         true, // callback res slices are worker-owned
}

// auditedCallers maps repo-relative file -> method -> justification. Every
// entry has been read by a human; the justification records why it cannot
// retain a searcher-owned slice across queries.
var auditedCallers = map[string]map[string]string{
	"cmd/sofa-query/main.go": {
		"SearchInto": "public sofa API; prints each result batch before the next call reuses buf",
		"NewStream":  "public sofa API; callback prints res inline, nothing escapes the callback",
	},
	"examples/quickstart/main.go": {
		"Search": "public sofa.Search: results are caller-owned copies",
	},
	"examples/seismic/main.go": {
		"Search1":    "scan baseline value result (index.Result), no slice to retain",
		"SearchInto": "public sofa API; buf[0].Dist scalar extracted before the next call",
	},
	"examples/vectors/main.go": {
		"Search":     "public sofa.Search: results are caller-owned copies",
		"SearchInto": "public sofa API; printed/validated inside the loop before the next call reuses buf",
	},
	"internal/bench/approx_experiment.go": {
		"Search":            "extracts r[0].Dist scalar only",
		"SearchApproximate": "extracts r[0].Dist scalar only",
		"SearchEpsilon":     "extracts r[0].Dist scalar only",
	},
	"internal/bench/bench.go": {
		"Search": "timeTreeQueries/timeScanQueries discard results (latency only)",
	},
	"internal/bench/chaos_experiment.go": {
		"SearchPlan": "dst=nil (fresh slice per query); ids are counted into coverage before the searcher's next query",
	},
	"internal/bench/qps_experiment.go": {
		"NewStream": "callback only counts completions; res never escapes",
	},
	"internal/bench/report.go": {
		"Search": "searchSteadyStateAllocs discards results (alloc count only)",
	},
	"internal/core/collection.go": {
		"Search":            "SearchBatch copies (append(nil, res...)) before the pooled searcher is reused; Search1 extracts res[0]; single-shard Search forwards the documented owned-slice contract",
		"SearchApproximate": "forwards the owned-slice contract (documented)",
		"SearchEpsilon":     "forwards the owned-slice contract (documented)",
		"SearchPlan":        "SearchBatchPlan passes dst=nil, so each query's results are freshly allocated and caller-owned",
	},
	"internal/core/core.go": {
		"NewStream": "doc example in package comment context; Index.NewStream forwards the callback-scoped contract",
	},
	"internal/core/stream.go": {
		"SearchPlan": "worker appends into its own pooled resBuf and passes it straight to the callback; contract documents callback scope",
	},
	"sofa/query.go": {
		"SearchPlan": "dst is nil (Search: fresh caller-owned slice) or the caller's own buf (SearchInto) — never searcher scratch; see TestSofaPublicOwnership",
	},
	"sofa/stream.go": {
		"NewStream": "public wrapper forwarding the documented callback-scoped contract",
	},
	"internal/index/batch.go": {
		"Search": "BatchSearchInto copies results into the caller buffer before the pooled searcher is reused",
	},
	"internal/index/search.go": {
		"Search": "Search1 extracts res[0] before returning",
	},
	"internal/scan/scan.go": {
		"Search": "Search1 extracts res[0]; scanner results are freshly collected per call",
	},
}

func TestPooledSliceRetentionAudit(t *testing.T) {
	found := map[string]map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !ownedSliceAPIs[sel.Sel.Name] {
				return true
			}
			rel := filepath.ToSlash(path)
			if found[rel] == nil {
				found[rel] = map[string]bool{}
			}
			found[rel][sel.Sel.Name] = true
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for file, methods := range found {
		for m := range methods {
			if auditedCallers[file][m] == "" {
				t.Errorf("unaudited caller: %s calls %s — searcher-owned/callback-scoped slices must not be retained across queries; audit the call site and add it to auditedCallers with a justification", file, m)
			}
		}
	}
	// Stale entries rot the audit the other way: they claim coverage of
	// call sites that no longer exist.
	var stale []string
	for file, methods := range auditedCallers {
		for m := range methods {
			if !found[file][m] {
				stale = append(stale, file+":"+m)
			}
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("stale audit entry %s (call site gone); remove it from auditedCallers", s)
	}
}

// faultinjectHookSites maps repo-relative file -> the Site* constants its
// faultinject.Hook calls are allowed to use. The hook surface is a closed,
// human-audited set: a new hook call site (or an existing one switching
// sites) must be added here after reading it, and every call must sit
// inside an `if faultinject.Enabled` guard so the release build (where
// Enabled is a false constant) dead-code-eliminates the entire harness.
var faultinjectHookSites = map[string]map[string]bool{
	"internal/core/persist.go": {"SitePersistRead": true, "SitePersistWrite": true, "SiteCheckpointRename": true},
	"internal/core/stream.go":  {"SiteStreamWorker": true, "SiteStreamSubmit": true},
	"internal/core/wal.go":     {"SiteWALAppend": true, "SiteWALSync": true},
	"internal/index/approx.go": {"SiteKernel": true},
	"internal/index/batch.go":  {"SiteBatchWorker": true},
	"internal/index/shard.go":  {"SiteShardSeed": true, "SiteShardFinish": true, "SiteKernel": true},
}

// TestFaultinjectHookAudit walks the module's non-test sources and pins the
// fault-injection hook surface: every faultinject.Hook call must (1) pass a
// faultinject.Site* selector constant — never a string literal or variable,
// so the schedule space stays enumerable and Arm's validation stays exact —
// (2) appear at a file/site pair in the audited allowlist above, and (3) be
// lexically inside an `if faultinject.Enabled` guard. The faultinject
// package itself (which defines Hook) is exempt.
func TestFaultinjectHookAudit(t *testing.T) {
	found := map[string]map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if (strings.HasPrefix(d.Name(), ".") && path != ".") || filepath.ToSlash(path) == "internal/faultinject" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		rel := filepath.ToSlash(path)
		// Collect the ranges of every `if faultinject.Enabled { ... }` guard
		// (including `if faultinject.Enabled && ...`), then require each
		// Hook call to fall inside one.
		var guards [][2]token.Pos
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond := ifs.Cond
			if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
				cond = b.X
			}
			if isFaultinjectSelector(cond, "Enabled") {
				guards = append(guards, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFaultinjectSelector(call.Fun, "Hook") {
				return true
			}
			pos := fset.Position(call.Pos())
			site := ""
			if len(call.Args) == 1 {
				if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "faultinject" && strings.HasPrefix(sel.Sel.Name, "Site") {
						site = sel.Sel.Name
					}
				}
			}
			if site == "" {
				t.Errorf("%s:%d: faultinject.Hook argument must be a faultinject.Site* constant", rel, pos.Line)
				return true
			}
			guarded := false
			for _, g := range guards {
				if call.Pos() >= g[0] && call.End() <= g[1] {
					guarded = true
					break
				}
			}
			if !guarded {
				t.Errorf("%s:%d: faultinject.Hook(%s) is not inside an `if faultinject.Enabled` guard — the release build would keep the call", rel, pos.Line, site)
			}
			if found[rel] == nil {
				found[rel] = map[string]bool{}
			}
			found[rel][site] = true
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for file, sites := range found {
		for s := range sites {
			if !faultinjectHookSites[file][s] {
				t.Errorf("unaudited fault-injection hook: %s fires %s — read the call site and add it to faultinjectHookSites", file, s)
			}
		}
	}
	var stale []string
	for file, sites := range faultinjectHookSites {
		for s := range sites {
			if !found[file][s] {
				stale = append(stale, file+":"+s)
			}
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("stale hook audit entry %s (call site gone); remove it from faultinjectHookSites", s)
	}
}

func isFaultinjectSelector(e ast.Expr, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "faultinject"
}

// TestSofaPublicOwnership pins the public boundary's ownership contract
// behaviorally: sofa.Search must COPY (its results survive any number of
// later queries on the same index, which cycle the pooled internal
// searchers), and only SearchInto may reuse memory — the caller's own
// buffer, overwritten by the next call exactly like append. The pooled
// searcher-owned slice contract this file audits therefore stops at the
// internal packages.
func TestSofaPublicOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := sofa.NewMatrix(400, 32)
	for i := 0; i < data.Len(); i++ {
		row := data.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	data.ZNormalizeAll()
	ix, err := sofa.Build(data, sofa.SampleRate(0.5), sofa.LeafSize(32))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	query := func() []float64 {
		q := make([]float64, 32)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		return q
	}

	res, err := ix.Search(ctx, sofa.Query{Series: query(), K: 8})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]sofa.Result(nil), res...)
	for i := 0; i < 30; i++ {
		if _, err := ix.Search(ctx, sofa.Query{Series: query(), K: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.SearchInto(ctx, sofa.Query{Series: query(), K: 8}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapshot {
		if res[i] != snapshot[i] {
			t.Fatalf("sofa.Search leaked a pooled slice: result %d mutated by later queries (%v != %v)", i, res[i], snapshot[i])
		}
	}

	// SearchInto, by contrast, documents overwrite semantics on the
	// caller's buffer — verify it aliases that buffer and nothing else.
	buf := make([]sofa.Result, 0, 8)
	r1, err := ix.SearchInto(ctx, sofa.Query{Series: query(), K: 8}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &buf[:1][0] {
		t.Fatal("SearchInto did not append into the caller's buffer")
	}
}
