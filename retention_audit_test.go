package repro

// Pooled-slice retention audit (ROADMAP item): Searcher.Search and friends
// return a slice owned by the (possibly pooled) searcher and overwritten by
// its next query; stream callbacks receive worker-owned slices valid only
// for the callback's duration. A caller that retains such a slice across
// calls corrupts results silently under load, so every call site must be
// audited by a human once and then pinned here.
//
// This test walks the module's non-test sources, collects every call site
// of the owning-slice APIs (by selector name — deliberately over-inclusive:
// scan/flat Search methods return fresh slices, but auditing them costs one
// allowlist line and catches contract drift), and fails when a file gains
// a call that is not in the audited allowlist below. To clear a failure:
// read the new caller, verify it either consumes the results before the
// searcher's next query, copies them (append([]index.Result(nil), res...)),
// or only extracts scalars — then add the file:method pair with a one-line
// justification.

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/sofa"
)

// ownedSliceAPIs are the method names whose results alias caller-invisible
// pooled buffers (or, for NewStream, register callbacks that receive them).
// The public sofa package deliberately inverts the contract — sofa.Search
// results are caller-owned copies — but its method names stay in this map
// so every new call site is still read once by a human: the public
// SearchInto and the stream callbacks do alias reused memory.
var ownedSliceAPIs = map[string]bool{
	"Search":            true,
	"Search1":           true, // returns a value, but callers often switch to Search
	"SearchApproximate": true,
	"SearchEpsilon":     true,
	"SearchPlan":        true, // appends into caller dst — worker-owned when dst is pooled scratch
	"SearchInto":        true, // public escape hatch: results overwritten by the next call with the same buf
	"NewStream":         true, // callback res slices are worker-owned
}

// auditedCallers maps repo-relative file -> method -> justification. Every
// entry has been read by a human; the justification records why it cannot
// retain a searcher-owned slice across queries.
var auditedCallers = map[string]map[string]string{
	"cmd/sofa-query/main.go": {
		"SearchInto": "public sofa API; prints each result batch before the next call reuses buf",
		"NewStream":  "public sofa API; callback prints res inline, nothing escapes the callback",
	},
	"examples/quickstart/main.go": {
		"Search": "public sofa.Search: results are caller-owned copies",
	},
	"examples/seismic/main.go": {
		"Search1":    "scan baseline value result (index.Result), no slice to retain",
		"SearchInto": "public sofa API; buf[0].Dist scalar extracted before the next call",
	},
	"examples/vectors/main.go": {
		"Search":     "public sofa.Search: results are caller-owned copies",
		"SearchInto": "public sofa API; printed/validated inside the loop before the next call reuses buf",
	},
	"internal/bench/approx_experiment.go": {
		"Search":            "extracts r[0].Dist scalar only",
		"SearchApproximate": "extracts r[0].Dist scalar only",
		"SearchEpsilon":     "extracts r[0].Dist scalar only",
	},
	"internal/bench/bench.go": {
		"Search": "timeTreeQueries/timeScanQueries discard results (latency only)",
	},
	"internal/bench/qps_experiment.go": {
		"NewStream": "callback only counts completions; res never escapes",
	},
	"internal/bench/report.go": {
		"Search": "searchSteadyStateAllocs discards results (alloc count only)",
	},
	"internal/core/collection.go": {
		"Search":            "SearchBatch copies (append(nil, res...)) before the pooled searcher is reused; Search1 extracts res[0]; single-shard Search forwards the documented owned-slice contract",
		"SearchApproximate": "forwards the owned-slice contract (documented)",
		"SearchEpsilon":     "forwards the owned-slice contract (documented)",
		"SearchPlan":        "SearchBatchPlan passes dst=nil, so each query's results are freshly allocated and caller-owned",
	},
	"internal/core/core.go": {
		"NewStream": "doc example in package comment context; Index.NewStream forwards the callback-scoped contract",
	},
	"internal/core/stream.go": {
		"SearchPlan": "worker appends into its own pooled resBuf and passes it straight to the callback; contract documents callback scope",
	},
	"sofa/query.go": {
		"SearchPlan": "dst is nil (Search: fresh caller-owned slice) or the caller's own buf (SearchInto) — never searcher scratch; see TestSofaPublicOwnership",
	},
	"sofa/stream.go": {
		"NewStream": "public wrapper forwarding the documented callback-scoped contract",
	},
	"internal/index/batch.go": {
		"Search": "BatchSearchInto copies results into the caller buffer before the pooled searcher is reused",
	},
	"internal/index/search.go": {
		"Search": "Search1 extracts res[0] before returning",
	},
	"internal/scan/scan.go": {
		"Search": "Search1 extracts res[0]; scanner results are freshly collected per call",
	},
}

func TestPooledSliceRetentionAudit(t *testing.T) {
	found := map[string]map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !ownedSliceAPIs[sel.Sel.Name] {
				return true
			}
			rel := filepath.ToSlash(path)
			if found[rel] == nil {
				found[rel] = map[string]bool{}
			}
			found[rel][sel.Sel.Name] = true
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for file, methods := range found {
		for m := range methods {
			if auditedCallers[file][m] == "" {
				t.Errorf("unaudited caller: %s calls %s — searcher-owned/callback-scoped slices must not be retained across queries; audit the call site and add it to auditedCallers with a justification", file, m)
			}
		}
	}
	// Stale entries rot the audit the other way: they claim coverage of
	// call sites that no longer exist.
	var stale []string
	for file, methods := range auditedCallers {
		for m := range methods {
			if !found[file][m] {
				stale = append(stale, file+":"+m)
			}
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("stale audit entry %s (call site gone); remove it from auditedCallers", s)
	}
}

// TestSofaPublicOwnership pins the public boundary's ownership contract
// behaviorally: sofa.Search must COPY (its results survive any number of
// later queries on the same index, which cycle the pooled internal
// searchers), and only SearchInto may reuse memory — the caller's own
// buffer, overwritten by the next call exactly like append. The pooled
// searcher-owned slice contract this file audits therefore stops at the
// internal packages.
func TestSofaPublicOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := sofa.NewMatrix(400, 32)
	for i := 0; i < data.Len(); i++ {
		row := data.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	data.ZNormalizeAll()
	ix, err := sofa.Build(data, sofa.SampleRate(0.5), sofa.LeafSize(32))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	query := func() []float64 {
		q := make([]float64, 32)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		return q
	}

	res, err := ix.Search(ctx, sofa.Query{Series: query(), K: 8})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]sofa.Result(nil), res...)
	for i := 0; i < 30; i++ {
		if _, err := ix.Search(ctx, sofa.Query{Series: query(), K: 8}); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.SearchInto(ctx, sofa.Query{Series: query(), K: 8}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapshot {
		if res[i] != snapshot[i] {
			t.Fatalf("sofa.Search leaked a pooled slice: result %d mutated by later queries (%v != %v)", i, res[i], snapshot[i])
		}
	}

	// SearchInto, by contrast, documents overwrite semantics on the
	// caller's buffer — verify it aliases that buffer and nothing else.
	buf := make([]sofa.Result, 0, 8)
	r1, err := ix.SearchInto(ctx, sofa.Query{Series: query(), K: 8}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &buf[:1][0] {
		t.Fatal("SearchInto did not append into the caller's buffer")
	}
}
