package repro

// Pooled-slice retention audit (ROADMAP item): Searcher.Search and friends
// return a slice owned by the (possibly pooled) searcher and overwritten by
// its next query; stream callbacks receive worker-owned slices valid only
// for the callback's duration. A caller that retains such a slice across
// calls corrupts results silently under load, so every call site must be
// audited by a human once and then pinned here.
//
// This test walks the module's non-test sources, collects every call site
// of the owning-slice APIs (by selector name — deliberately over-inclusive:
// scan/flat Search methods return fresh slices, but auditing them costs one
// allowlist line and catches contract drift), and fails when a file gains
// a call that is not in the audited allowlist below. To clear a failure:
// read the new caller, verify it either consumes the results before the
// searcher's next query, copies them (append([]index.Result(nil), res...)),
// or only extracts scalars — then add the file:method pair with a one-line
// justification.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// ownedSliceAPIs are the method names whose results alias caller-invisible
// pooled buffers (or, for NewStream, register callbacks that receive them).
var ownedSliceAPIs = map[string]bool{
	"Search":            true,
	"Search1":           true, // returns a value, but callers often switch to Search
	"SearchApproximate": true,
	"SearchEpsilon":     true,
	"NewStream":         true, // callback res slices are worker-owned
}

// auditedCallers maps repo-relative file -> method -> justification. Every
// entry has been read by a human; the justification records why it cannot
// retain a searcher-owned slice across queries.
var auditedCallers = map[string]map[string]string{
	"cmd/sofa-query/main.go": {
		"Search":    "prints each result batch before the next query on the same searcher",
		"NewStream": "callback prints res inline; nothing escapes the callback",
	},
	"examples/quickstart/main.go": {
		"Search": "one-shot searcher; results printed immediately",
	},
	"examples/seismic/main.go": {
		"Search1": "value result (index.Result), no slice to retain",
	},
	"examples/vectors/main.go": {
		"Search": "prints inside the loop before the searcher's next query",
	},
	"internal/bench/approx_experiment.go": {
		"Search":            "extracts r[0].Dist scalar only",
		"SearchApproximate": "extracts r[0].Dist scalar only",
		"SearchEpsilon":     "extracts r[0].Dist scalar only",
	},
	"internal/bench/bench.go": {
		"Search": "timeTreeQueries/timeScanQueries discard results (latency only)",
	},
	"internal/bench/qps_experiment.go": {
		"NewStream": "callback only counts completions; res never escapes",
	},
	"internal/bench/report.go": {
		"Search": "searchSteadyStateAllocs discards results (alloc count only)",
	},
	"internal/core/collection.go": {
		"Search":            "SearchBatch copies (append(nil, res...)) before the pooled searcher is reused; Search1 extracts res[0]; single-shard Search forwards the documented owned-slice contract",
		"SearchApproximate": "forwards the owned-slice contract (documented)",
		"SearchEpsilon":     "forwards the owned-slice contract (documented)",
	},
	"internal/core/core.go": {
		"NewStream": "doc example in package comment context; Index.NewStream forwards the callback-scoped contract",
	},
	"internal/core/stream.go": {
		"Search": "worker passes res straight to the callback; contract documents callback scope",
	},
	"internal/index/batch.go": {
		"Search": "BatchSearchInto copies results into the caller buffer before the pooled searcher is reused",
	},
	"internal/index/search.go": {
		"Search": "Search1 extracts res[0] before returning",
	},
	"internal/scan/scan.go": {
		"Search": "Search1 extracts res[0]; scanner results are freshly collected per call",
	},
}

func TestPooledSliceRetentionAudit(t *testing.T) {
	found := map[string]map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !ownedSliceAPIs[sel.Sel.Name] {
				return true
			}
			rel := filepath.ToSlash(path)
			if found[rel] == nil {
				found[rel] = map[string]bool{}
			}
			found[rel][sel.Sel.Name] = true
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for file, methods := range found {
		for m := range methods {
			if auditedCallers[file][m] == "" {
				t.Errorf("unaudited caller: %s calls %s — searcher-owned/callback-scoped slices must not be retained across queries; audit the call site and add it to auditedCallers with a justification", file, m)
			}
		}
	}
	// Stale entries rot the audit the other way: they claim coverage of
	// call sites that no longer exist.
	var stale []string
	for file, methods := range auditedCallers {
		for m := range methods {
			if !found[file][m] {
				stale = append(stale, file+":"+m)
			}
		}
	}
	sort.Strings(stale)
	for _, s := range stale {
		t.Errorf("stale audit entry %s (call site gone); remove it from auditedCallers", s)
	}
}
