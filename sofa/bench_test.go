package sofa

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
)

// BenchmarkBatchSearchQPS mirrors internal/index's benchmark of the same
// name — identical generator seed, dataset shape (20000 x 128), leaf
// capacity, SFA sampling rate, k and query count — but drives the public
// SearchBatch API, so the cost of the redesigned boundary (per-query plans,
// context checks, caller-owned copies) is directly comparable against the
// internal engine's snapshot in BENCH_pr3.json.
func BenchmarkBatchSearchQPS(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	m := mixedMatrix(rng, 20000, 128)
	ix, err := Build(m, LeafSize(256), SampleRate(0.05))
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]Query, 4*runtime.GOMAXPROCS(0))
	for i := range qs {
		qs[i] = Query{Series: randQuery(rng, 128), K: 10}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchBatch(ctx, qs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(qs))/secs, "queries/s")
	}
}

// BenchmarkSearchInto measures the zero-allocation escape hatch in steady
// state; allocs/op must be 0 (also asserted by TestSearchIntoReusesBuffer).
func BenchmarkSearchInto(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	m := mixedMatrix(rng, 20000, 128)
	ix, err := Build(m, LeafSize(256), SampleRate(0.05), Workers(1))
	if err != nil {
		b.Fatal(err)
	}
	q := Query{Series: randQuery(rng, 128), K: 10}
	ctx := context.Background()
	var buf []Result
	if buf, err = ix.SearchInto(ctx, q, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = ix.SearchInto(ctx, q, buf); err != nil {
			b.Fatal(err)
		}
	}
}
