package sofa

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A pre-cancelled context must be reported before any shard work happens,
// from every execution engine. (That no shard is seeded is asserted at the
// internal layer, where the work counters are visible; here the contract is
// the error identity and that the index stays usable afterwards.)
func TestPreCancelledContext(t *testing.T) {
	ix, _, rng := buildFixture(t, 400, 32, Shards(2))
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Series: randQuery(rng, 32), K: 3}

	if _, err := ix.Search(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Errorf("Search: got %v, want context.Canceled", err)
	}
	if _, err := ix.SearchInto(cancelled, q, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchInto: got %v, want context.Canceled", err)
	}
	qs := make([]Query, 64)
	for i := range qs {
		qs[i] = Query{Series: randQuery(rng, 32), K: 3}
	}
	for _, workers := range []int{1, 4} {
		if _, err := ix.SearchBatch(cancelled, qs, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("SearchBatch(workers=%d): got %v, want context.Canceled", workers, err)
		}
	}

	// The index must remain fully usable after cancelled calls returned
	// pooled searchers.
	if _, err := ix.Search(context.Background(), q); err != nil {
		t.Fatalf("index unusable after cancelled queries: %v", err)
	}
}

// A short context deadline aborts a large batch mid-flight: the batch is
// sized to take far longer than the deadline, and the error must be the
// context's. Run with -race in CI, this also exercises the cancellation
// paths of the batch workers and the shard fan-out for data races.
func TestDeadlineAbortsBatchMidFlight(t *testing.T) {
	ix, _, rng := buildFixture(t, 2000, 64, Shards(2))
	// A batch far too big to finish inside the deadline on any machine:
	// cancellation must cut it short.
	qs := make([]Query, 20000)
	for i := range qs {
		qs[i] = Query{Series: randQuery(rng, 64), K: 10}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ix.SearchBatch(ctx, qs, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: the full batch takes orders of magnitude longer than
	// the deadline, so finishing quickly proves the abort was mid-flight.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("batch took %v after a 15ms deadline — cancellation did not stop the work", elapsed)
	}
}

// Cancelling a context mid-batch (not just a deadline) aborts with
// context.Canceled.
func TestCancelAbortsBatch(t *testing.T) {
	ix, _, rng := buildFixture(t, 2000, 64)
	qs := make([]Query, 20000)
	for i := range qs {
		qs[i] = Query{Series: randQuery(rng, 64), K: 10}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ix.SearchBatch(ctx, qs, 2)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not return after cancellation")
	}
}

// One query's expired plan deadline must abort the whole batch: every
// worker stops before its next query instead of running the remaining
// thousands to completion (the documented first-error-aborts contract).
func TestQueryErrorAbortsBatch(t *testing.T) {
	ix, _, rng := buildFixture(t, 2000, 64)
	qs := make([]Query, 20000)
	for i := range qs {
		qs[i] = Query{Series: randQuery(rng, 64), K: 10}
	}
	// An early query with an already-expired per-query deadline.
	qs[3] = qs[3].With(Deadline(time.Now().Add(-time.Second)))
	start := time.Now()
	_, err := ix.SearchBatch(context.Background(), qs, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("batch ran %v after an immediate per-query error — workers did not abort", elapsed)
	}
}

// SearchInto must hand the caller's buffer back on error, so the
// steady-state `buf, err = ix.SearchInto(...)` pattern keeps its warm
// capacity across expected failures.
func TestSearchIntoKeepsBufferOnError(t *testing.T) {
	ix, _, rng := buildFixture(t, 300, 32)
	buf := make([]Result, 0, 32)
	expired := Query{Series: randQuery(rng, 32), K: 3}.With(Deadline(time.Now().Add(-time.Second)))
	out, err := ix.SearchInto(context.Background(), expired, buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if cap(out) != cap(buf) || (cap(out) > 0 && &out[:1][0] != &buf[:1][0]) {
		t.Error("SearchInto dropped the caller's buffer on error")
	}
	// And the buffer still works for the next query.
	out, err = ix.SearchInto(context.Background(), Query{Series: randQuery(rng, 32), K: 3}, out)
	if err != nil || len(out) != 3 {
		t.Fatalf("buffer unusable after error: %d results, %v", len(out), err)
	}
}

// A per-query Deadline option aborts a single Search once it expires.
func TestQueryDeadlineOption(t *testing.T) {
	ix, _, rng := buildFixture(t, 400, 32)
	q := Query{Series: randQuery(rng, 32), K: 3}.With(Deadline(time.Now().Add(-time.Millisecond)))
	if _, err := ix.Search(context.Background(), q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want context.DeadlineExceeded", err)
	}
}
