package sofa

import (
	"fmt"

	"repro/internal/distance"
	"repro/internal/index"
)

// Matrix is a flat row-major collection of equal-length series — the input
// to Build and SearchBatch. It is an alias of the internal matrix type, so
// data prepared by the internal harnesses flows through the public API
// without copying; programs using only this package need just NewMatrix or
// FromRows plus Row and ZNormalizeAll.
type Matrix = distance.Matrix

// NewMatrix allocates a matrix for count series of the given length. Fill
// rows in place via Row, then z-normalize with ZNormalizeAll before Build.
func NewMatrix(count, length int) *Matrix {
	return distance.NewMatrix(count, length)
}

// FromRows builds a Matrix by copying the given equal-length rows. No rows
// returns ErrEmptyData; ragged or zero-length rows return
// ErrBadSeriesLength.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, ErrEmptyData
	}
	want := len(rows[0])
	if want == 0 {
		return nil, fmt.Errorf("%w: zero-length series", ErrBadSeriesLength)
	}
	m := distance.NewMatrix(len(rows), want)
	for i, r := range rows {
		if len(r) != want {
			return nil, fmt.Errorf("%w: row %d has length %d, want %d", ErrBadSeriesLength, i, len(r), want)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// ID is the stable public identifier of one indexed series. Series built
// into the index are numbered 0..Len()-1 in build order; Insert assigns ids
// sequentially from there. An id stays with its series for the series'
// lifetime — across Upsert (which replaces the value under the same id) and
// compaction (which reclaims deleted rows without renumbering) — and is
// never reused after Delete.
type ID = index.ID

// Result is one answer of a similarity query. Dist is the squared
// z-normalized Euclidean distance (take the square root at presentation
// time).
type Result = index.Result

// TreeStats describes the aggregate index structure: subtree and leaf
// counts, depth and leaf occupancy.
type TreeStats = index.Stats

// SearchStats reports how much work one query did — the pruning-power
// counters behind the paper's Section V-E discussion. Request them with the
// WithStats query option.
type SearchStats = index.SearchStats
