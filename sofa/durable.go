package sofa

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

// SyncPolicy selects when a durable index's write-ahead log fsyncs; see the
// README's durability table for what each policy guarantees after kill -9.
type SyncPolicy = core.SyncPolicy

const (
	// SyncAlways fsyncs after every Insert (the default): an acknowledged
	// insert survives power loss.
	SyncAlways SyncPolicy = core.SyncAlways
	// SyncInterval fsyncs at most once per SyncEvery interval: a crash loses
	// at most the last interval's acknowledged inserts.
	SyncInterval SyncPolicy = core.SyncInterval
	// SyncNone leaves flushing to the OS: a process crash loses nothing, a
	// power failure can lose everything since the last checkpoint.
	SyncNone SyncPolicy = core.SyncNone
)

// RecoveryStats reports what an Open found and did: the checkpoint it
// loaded, the WAL records it replayed or skipped, and whatever torn or
// corrupt tail it discarded (TailError wraps ErrRecoveryTruncated or
// ErrWALCorrupt; nil for a clean log).
type RecoveryStats = core.RecoveryStats

// OpenOption configures Open.
type OpenOption func(*openConfig)

type openConfig struct {
	create    *Matrix
	buildOpts []Option
	dcfg      core.DurableConfig
	stats     *RecoveryStats
}

// CreateFrom initializes the directory from a fresh build over data (with
// the usual Build options) when it does not yet hold an index. Without this
// option, Open of an uninitialized directory fails. The option is ignored —
// data is not consulted — when the directory already holds an index.
func CreateFrom(data *Matrix, opts ...Option) OpenOption {
	return func(c *openConfig) { c.create, c.buildOpts = data, opts }
}

// WithSync sets the WAL sync policy (default SyncAlways).
func WithSync(p SyncPolicy) OpenOption {
	return func(c *openConfig) { c.dcfg.Sync = p }
}

// SyncEvery selects the SyncInterval policy with the given maximum fsync
// spacing.
func SyncEvery(d time.Duration) OpenOption {
	return func(c *openConfig) { c.dcfg.Sync = core.SyncInterval; c.dcfg.SyncInterval = d }
}

// StrictRecovery makes Open fail on a torn or corrupt WAL tail instead of
// recovering the valid prefix and discarding the rest. The default is
// lenient: a torn tail is the expected residue of a crash mid-append, and
// what was discarded is reported via WithRecoveryStats.
func StrictRecovery() OpenOption {
	return func(c *openConfig) { c.dcfg.StrictWAL = true }
}

// WithRecoveryStats records into dst what the Open found: checkpoint
// version, records replayed and skipped, and bytes discarded from a torn or
// corrupt WAL tail. Also available afterwards as DurableIndex.RecoveryStats.
func WithRecoveryStats(dst *RecoveryStats) OpenOption {
	return func(c *openConfig) { c.stats = dst }
}

// DurableIndex is an Index whose mutations survive process death: every
// Insert, Delete, and Upsert is appended to a write-ahead log before it is
// applied, Checkpoint atomically publishes the in-memory state as a new
// container, and Open recovers the exact acknowledged state after a crash.
// All read paths (Search, SearchInto, SearchBatch, NewStream, ...) are the
// embedded Index's and follow its concurrency contract;
// Insert/Delete/Upsert/Checkpoint/Sync/Close are single-writer, like the
// in-memory mutation API itself.
type DurableIndex struct {
	*Index
	st *core.Store
}

// Open opens (or, with CreateFrom, initializes) the durable index stored in
// dir. An existing directory is recovered: the checkpoint container is
// loaded and the write-ahead log's suffix of post-checkpoint inserts is
// replayed through the ordinary insert path, stopping cleanly at the first
// torn or corrupt record — the valid prefix is recovered and the damaged
// tail discarded (see StrictRecovery to fail instead, and WithRecoveryStats
// for an exact account). Open never panics on damaged WAL bytes and never
// invents data: recovered ids and series are exactly the acknowledged
// prefix.
func Open(dir string, opts ...OpenOption) (*DurableIndex, error) {
	var c openConfig
	for _, opt := range opts {
		opt(&c)
	}
	if _, err := os.Stat(core.ContainerPath(dir)); errors.Is(err, os.ErrNotExist) {
		if c.create == nil {
			return nil, fmt.Errorf("sofa: no index in %s (pass CreateFrom to initialize): %w", dir, os.ErrNotExist)
		}
		built, err := Build(c.create, c.buildOpts...)
		if err != nil {
			return nil, err
		}
		st, err := core.CreateStore(dir, built.ix, c.dcfg)
		if err != nil {
			return nil, err
		}
		return finishOpen(st, c.stats), nil
	} else if err != nil {
		return nil, err
	}
	st, err := core.Recover(dir, c.dcfg)
	if err != nil {
		return nil, err
	}
	return finishOpen(st, c.stats), nil
}

func finishOpen(st *core.Store, stats *RecoveryStats) *DurableIndex {
	if stats != nil {
		*stats = st.RecoveryStats()
	}
	return &DurableIndex{Index: newIndex(st.Index()), st: st}
}

// Insert durably adds one series: it is appended to the write-ahead log
// (synced per the configured policy) before it is applied to the index, so
// an acknowledged insert survives a crash and is replayed by the next Open.
// Returns the assigned id. Same synchronization contract as Index.Insert.
func (x *DurableIndex) Insert(series []float64) (ID, error) {
	if len(series) != x.SeriesLen() {
		return 0, fmt.Errorf("%w: series length %d, want %d", ErrBadSeriesLength, len(series), x.SeriesLen())
	}
	return x.st.Insert(series)
}

// Delete durably removes the series with the given id: the delete record is
// appended to the write-ahead log before the tombstone is applied, so an
// acknowledged delete survives a crash and is replayed by the next Open.
// Same semantics as Index.Delete (ErrNotFound, ErrTombstoned, permanent id
// retirement).
func (x *DurableIndex) Delete(id ID) error { return x.st.Delete(id) }

// Upsert durably replaces the series stored under id, keeping the id
// stable: the upsert record is appended to the write-ahead log before the
// replacement is applied. Same semantics as Index.Upsert.
func (x *DurableIndex) Upsert(id ID, series []float64) error {
	if len(series) != x.SeriesLen() {
		return fmt.Errorf("%w: series length %d, want %d", ErrBadSeriesLength, len(series), x.SeriesLen())
	}
	return x.st.Upsert(id, series)
}

// Checkpoint atomically publishes the current state as the new container
// (temp file, fsync, rename, directory fsync) and resets the write-ahead
// log. A crash at any point — before, during, or after — leaves the
// directory recoverable to exactly the acknowledged state.
func (x *DurableIndex) Checkpoint() error { return x.st.Checkpoint() }

// Sync forces the write-ahead log to stable storage regardless of the sync
// policy — the explicit durability barrier for SyncInterval/SyncNone users.
func (x *DurableIndex) Sync() error { return x.st.Sync() }

// RecoveryStats reports what the Open that produced this index found and
// did.
func (x *DurableIndex) RecoveryStats() RecoveryStats { return x.st.RecoveryStats() }

// WALBytes returns the write-ahead log's current size — a signal for
// scheduling Checkpoint (replay time on the next Open is proportional to
// it).
func (x *DurableIndex) WALBytes() int64 { return x.st.WALSize() }

// Close syncs outstanding WAL records and releases the store's file
// handles. It does not checkpoint: the next Open replays the log. The index
// must not be used after Close.
func (x *DurableIndex) Close() error { return x.st.Close() }
