package sofa

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// The public durability surface: Open/CreateFrom, recovery stats, sync
// policies, checkpointing, and the re-exported sentinels. The underlying
// WAL/recovery machinery is exercised in internal/core's durability suite;
// these tests pin the sofa-level contract.

func durableData(count int) *Matrix {
	return mixedMatrix(rand.New(rand.NewSource(88)), count, 32)
}

func durableOpts() []Option {
	return []Option{Shards(2), Workers(1), LeafSize(32), SampleRate(0.5)}
}

func TestOpenCreateAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store") // Open must create the directory
	data := durableData(120)
	base := data.Len()
	ix, err := Open(dir, CreateFrom(data, durableOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var inserted [][]float64
	for i := 0; i < 3; i++ {
		s := randQuery(rng, 32)
		id, err := ix.Insert(s)
		if err != nil {
			t.Fatal(err)
		}
		if want := ID(base + i); id != want {
			t.Fatalf("insert %d assigned id %d, want %d", i, id, want)
		}
		inserted = append(inserted, s)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	var stats RecoveryStats
	re, err := Open(dir, WithRecoveryStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if stats.Replayed != 3 || stats.Skipped != 0 || stats.TailError != nil {
		t.Fatalf("recovery stats = %+v, want 3 replayed, clean tail", stats)
	}
	if stats.CheckpointLen != base {
		t.Fatalf("checkpoint len %d, want %d", stats.CheckpointLen, base)
	}
	if re.RecoveryStats() != stats {
		t.Fatalf("RecoveryStats method disagrees with WithRecoveryStats")
	}
	if re.Len() != base+3 {
		t.Fatalf("recovered %d series, want %d", re.Len(), base+3)
	}
	// Each replayed insert must be findable at distance ~0 by its own series.
	for i, s := range inserted {
		res, err := re.Search(context.Background(), Query{Series: s, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != ID(base+i) || res[0].Dist > 1e-9 {
			t.Fatalf("insert %d: got id %d dist %g, want id %d dist ~0", i, res[0].ID, res[0].Dist, base+i)
		}
	}
	// Ids keep counting from the recovered length.
	id, err := re.Insert(randQuery(rng, 32))
	if err != nil {
		t.Fatal(err)
	}
	if id != ID(base+3) {
		t.Fatalf("post-recovery insert id %d, want %d", id, base+3)
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nothing-here"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open of uninitialized dir: %v, want ErrNotExist", err)
	}
}

func TestOpenCreateFromIgnoredWhenExists(t *testing.T) {
	dir := t.TempDir()
	data := durableData(120)
	base := data.Len()
	ix, err := Open(dir, CreateFrom(data, durableOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Open with different CreateFrom data must recover the existing
	// index, not rebuild.
	re, err := Open(dir, CreateFrom(durableData(10), durableOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != base {
		t.Fatalf("reopen with CreateFrom rebuilt: %d series, want %d", re.Len(), base)
	}
}

func TestDurableInsertBadLength(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, CreateFrom(durableData(60), durableOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Insert(make([]float64, 7)); !errors.Is(err, ErrBadSeriesLength) {
		t.Fatalf("short insert: %v, want ErrBadSeriesLength", err)
	}
}

func TestDurableSyncPoliciesAndCheckpoint(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  OpenOption
	}{
		{"none", WithSync(SyncNone)},
		{"interval", SyncEvery(time.Hour)}, // interval never elapses; explicit Sync is the barrier
		{"always", WithSync(SyncAlways)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			data := durableData(60)
			base := data.Len()
			ix, err := Open(dir, append([]OpenOption{CreateFrom(data, durableOpts()...)}, tc.opt)...)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 4; i++ {
				if _, err := ix.Insert(randQuery(rng, 32)); err != nil {
					t.Fatal(err)
				}
			}
			if err := ix.Sync(); err != nil {
				t.Fatal(err)
			}
			walBefore := ix.WALBytes()
			if err := ix.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if ix.WALBytes() >= walBefore {
				t.Fatalf("checkpoint did not shrink the WAL: %d -> %d bytes", walBefore, ix.WALBytes())
			}
			if _, err := ix.Insert(randQuery(rng, 32)); err != nil {
				t.Fatal(err)
			}
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}
			var stats RecoveryStats
			re, err := Open(dir, WithRecoveryStats(&stats))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if stats.CheckpointLen != base+4 || stats.Replayed != 1 {
				t.Fatalf("recovery stats = %+v, want checkpoint %d + 1 replayed", stats, base+4)
			}
			if re.Len() != base+5 {
				t.Fatalf("recovered %d series, want %d", re.Len(), base+5)
			}
		})
	}
}

func TestOpenSentinelIdentity(t *testing.T) {
	// The re-exported sentinels must be the selfsame values recovery wraps,
	// so callers can errors.Is against the sofa package alone.
	dir := t.TempDir()
	data := durableData(60)
	ix, err := Open(dir, CreateFrom(data, durableOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3; i++ {
		if _, err := ix.Insert(randQuery(rng, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	wal := core.WALPath(dir)
	t.Run("truncated", func(t *testing.T) {
		info, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(wal, info.Size()-11); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, StrictRecovery()); !errors.Is(err, ErrRecoveryTruncated) {
			t.Fatalf("strict open of torn log: %v, want ErrRecoveryTruncated", err)
		}
		var stats RecoveryStats
		re, err := Open(dir, WithRecoveryStats(&stats)) // lenient default repairs
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if !errors.Is(stats.TailError, ErrRecoveryTruncated) || stats.Replayed != 2 {
			t.Fatalf("lenient stats = %+v, want truncated tail, 2 replayed", stats)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		b, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-20] ^= 0x10 // flip a payload bit in the (now last) record
		if err := os.WriteFile(wal, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, StrictRecovery()); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("strict open of corrupt log: %v, want ErrWALCorrupt", err)
		}
		var stats RecoveryStats
		re, err := Open(dir, WithRecoveryStats(&stats))
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if !errors.Is(stats.TailError, ErrWALCorrupt) || stats.Replayed != 1 {
			t.Fatalf("lenient stats = %+v, want corrupt tail, 1 replayed", stats)
		}
	})
}
