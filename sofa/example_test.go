package sofa_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/sofa"
)

// exampleData builds a small deterministic collection of noisy sines.
func exampleData(count, n int) *sofa.Matrix {
	data := sofa.NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := data.Row(i)
		freq := 2 + float64(i%7)
		phase := float64(i) * 0.7
		for j := range row {
			row[j] = math.Sin(2*math.Pi*freq*float64(j)/float64(n) + phase)
		}
	}
	data.ZNormalizeAll()
	return data
}

// Build an index with functional options and answer one exact query.
func Example() {
	data := exampleData(256, 64)
	ix, err := sofa.Build(data, sofa.SFA(), sofa.LeafSize(32), sofa.SampleRate(1))
	if err != nil {
		panic(err)
	}

	// Querying with an indexed series finds that series at distance 0.
	res, err := ix.Search(context.Background(), sofa.Query{Series: data.Row(3), K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("nearest: series %d at distance %.1f\n", res[0].ID, math.Sqrt(res[0].Dist))
	// Output: nearest: series 3 at distance 0.0
}

// Per-query options ride on the Query value: epsilon bounds, approximate
// probes, deadlines and work counters.
func ExampleQuery_With() {
	data := exampleData(256, 64)
	ix, err := sofa.Build(data, sofa.SampleRate(1))
	if err != nil {
		panic(err)
	}
	var stats sofa.SearchStats
	q := sofa.Query{Series: data.Row(10), K: 5}.With(sofa.Epsilon(0.1), sofa.WithStats(&stats))
	res, err := ix.Search(context.Background(), q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d neighbors within a 1.1 factor of optimal\n", len(res))
	// Output: 5 neighbors within a 1.1 factor of optimal
}

// SearchBatch runs heterogeneous queries — here with different k — under
// one context.
func ExampleIndex_SearchBatch() {
	data := exampleData(256, 64)
	ix, err := sofa.Build(data, sofa.Shards(2), sofa.SampleRate(1))
	if err != nil {
		panic(err)
	}
	qs := []sofa.Query{
		{Series: data.Row(0), K: 2},
		{Series: data.Row(1), K: 3},
		{Series: data.Row(2), K: 4},
	}
	out, err := ix.SearchBatch(context.Background(), qs, 0)
	if err != nil {
		panic(err)
	}
	for _, res := range out {
		fmt.Print(len(res), " ")
	}
	fmt.Println()
	// Output: 2 3 4
}

// A query against an index with an unavailable shard fails by default;
// AllowPartial accepts the degraded answer instead, and WithQueryStats
// reports the shard accounting plus a live ε certificate for it.
func ExampleAllowPartial() {
	data := exampleData(256, 64)
	ix, err := sofa.Build(data, sofa.Shards(4), sofa.SampleRate(1))
	if err != nil {
		panic(err)
	}
	// Simulate losing shard 1 (queries skip it exactly as they would a
	// shard quarantined after repeated faults).
	if err := ix.QuarantineShard(1); err != nil {
		panic(err)
	}

	q := sofa.Query{Series: data.Row(3), K: 5}

	// The fail-fast default refuses to answer from a degraded index.
	_, err = ix.Search(context.Background(), q)
	fmt.Println("fail-fast degraded:", errors.Is(err, sofa.ErrDegraded))

	// AllowPartial answers from the surviving shards. The certificate says
	// every returned distance is within (1+ε) of the complete answer's;
	// ε = +Inf means the lost shard's index bound cannot rule out a better
	// neighbor hiding there, so the answer comes with no distance guarantee.
	var stats sofa.QueryStats
	res, err := ix.Search(context.Background(), q.With(sofa.AllowPartial(), sofa.WithQueryStats(&stats)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("partial: %d results from %d of %d shards, ε bounded: %v\n",
		len(res), stats.ShardsSearched, stats.ShardsSearched+stats.ShardsFailed,
		!math.IsInf(stats.EpsilonBound, 1))
	// Output:
	// fail-fast degraded: true
	// partial: 5 results from 3 of 4 shards, ε bounded: false
}

// The stream is the engine for sustained traffic: persistent workers,
// bounded backpressure, callback-scoped results.
func ExampleIndex_NewStream() {
	data := exampleData(256, 64)
	ix, err := sofa.Build(data, sofa.SampleRate(1))
	if err != nil {
		panic(err)
	}
	var answered sync.WaitGroup
	st, err := ix.NewStream(2, func(qid uint64, res []sofa.Result, err error) {
		// res is callback-scoped: copy it to retain beyond this call.
		answered.Done()
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 8; i++ {
		answered.Add(1)
		if _, err := st.Submit(sofa.Query{Series: data.Row(i), K: 3}); err != nil {
			panic(err)
		}
	}
	answered.Wait()
	st.Close()
	fmt.Println("answered 8 queries")
	// Output: answered 8 queries
}

// A durable index survives kill -9: every Insert is logged before it is
// acknowledged, and Open replays the log on the next start.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "sofa-durable")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// First Open initializes the directory from a fresh build.
	data := exampleData(256, 64)
	ix, err := sofa.Open(dir, sofa.CreateFrom(data, sofa.SampleRate(1)))
	if err != nil {
		panic(err)
	}
	series := append([]float64(nil), data.Row(0)...)
	id, err := ix.Insert(series) // logged, fsynced, then applied
	if err != nil {
		panic(err)
	}
	ix.Close() // a crash here instead would lose nothing

	// The next Open recovers the checkpoint and replays the logged insert.
	var stats sofa.RecoveryStats
	re, err := sofa.Open(dir, sofa.WithRecoveryStats(&stats))
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Printf("insert %d recovered: %d replayed onto a %d-series checkpoint\n",
		id, stats.Replayed, stats.CheckpointLen)
	// Output: insert 256 recovered: 1 replayed onto a 256-series checkpoint
}

// The mutation lifecycle: Insert assigns a stable id, Upsert replaces the
// series under it, Delete retires it permanently, and Compact reclaims the
// tombstoned rows per the configured policy (RCU swap — in-flight queries
// never block on the rebuild).
func ExampleIndex_Insert() {
	data := exampleData(256, 64)
	ix, err := sofa.Build(data, sofa.SampleRate(1),
		sofa.CompactionPolicy(sofa.Compaction{MaxTombstoneFraction: 0.001}))
	if err != nil {
		panic(err)
	}

	fresh := make([]float64, 64)
	for j := range fresh {
		fresh[j] = math.Cos(2 * math.Pi * 11 * float64(j) / 64)
	}
	id, err := ix.Insert(fresh)
	if err != nil {
		panic(err)
	}

	// Upsert keeps the id while swapping the series: searches for the new
	// shape find it under the old id.
	replacement := make([]float64, 64)
	for j := range replacement {
		replacement[j] = math.Cos(2*math.Pi*13*float64(j)/64 + 0.3)
	}
	if err := ix.Upsert(id, replacement); err != nil {
		panic(err)
	}
	res, err := ix.Search(context.Background(), sofa.Query{Series: replacement, K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("upserted id %d found itself: %v\n", id, res[0].ID == id)

	// Delete retires the id for good; mutating it again reports the tombstone.
	if err := ix.Delete(id); err != nil {
		panic(err)
	}
	fmt.Println("deleted twice:", errors.Is(ix.Delete(id), sofa.ErrTombstoned))

	// The upsert and the delete each left a dead row behind. Compact rebuilds
	// every shard past the policy threshold and reclaims them.
	fmt.Println("tombstoned before compaction:", ix.Tombstoned())
	if err := ix.Compact(); err != nil {
		panic(err)
	}
	fmt.Printf("after: %d tombstoned, %d live\n", ix.Tombstoned(), ix.Len())
	// Output:
	// upserted id 256 found itself: true
	// deleted twice: true
	// tombstoned before compaction: 2
	// after: 0 tombstoned, 256 live
}
