package sofa

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// Public fault-isolation surface: quarantine handles, AllowPartial +
// WithQueryStats degraded answers with ε certificates, sentinel error
// identity through errors.Is, degraded container loads, and the stream
// watchdog — all through the sofa package only.

func TestQuarantinePartialQueries(t *testing.T) {
	ix, _, rng := buildFixture(t, 400, 32, Shards(4))
	q := Query{Series: randQuery(rng, 32), K: 5}

	full, err := ix.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	if err := ix.QuarantineShard(1); err != nil {
		t.Fatal(err)
	}
	if got := ix.QuarantinedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("QuarantinedShards() = %v, want [1]", got)
	}

	// Fail-fast default: the degraded query errors, and both sentinels match.
	if _, err := ix.Search(context.Background(), q); !errors.Is(err, ErrDegraded) {
		t.Fatalf("fail-fast err = %v, want ErrDegraded", err)
	} else if !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("fail-fast err = %v, want ErrShardQuarantined", err)
	}

	// AllowPartial: non-empty answer, accurate shard accounting, sound ε.
	var qs QueryStats
	part, err := ix.Search(context.Background(), q.With(AllowPartial(), WithQueryStats(&qs)))
	if err != nil {
		t.Fatalf("AllowPartial search: %v", err)
	}
	if len(part) == 0 {
		t.Fatal("partial answer is empty")
	}
	if qs.ShardsFailed != 1 || qs.ShardsSearched != 3 {
		t.Fatalf("shard accounting = %d searched / %d failed, want 3/1", qs.ShardsSearched, qs.ShardsFailed)
	}
	if qs.EpsilonBound < 0 || math.IsNaN(qs.EpsilonBound) {
		t.Fatalf("EpsilonBound = %v, want >= 0", qs.EpsilonBound)
	}
	if qs.SeriesED == 0 {
		t.Fatalf("QueryStats work counters empty: %+v", qs.SearchStats)
	}
	// Certificate soundness against the healthy answer: every partial
	// distance within (1+ε) of the full search's, in the unsquared domain.
	for r := range part {
		if r >= len(full) {
			break
		}
		lhs := math.Sqrt(part[r].Dist)
		rhs := (1 + qs.EpsilonBound) * math.Sqrt(full[r].Dist) * (1 + 1e-9)
		if lhs > rhs {
			t.Fatalf("rank %d: partial %v exceeds (1+ε)·full %v (ε=%v)", r, lhs, rhs, qs.EpsilonBound)
		}
	}

	// Reinstate restores the bit-identical healthy answer and clean stats.
	if err := ix.ReinstateShard(1); err != nil {
		t.Fatal(err)
	}
	if got := ix.QuarantinedShards(); got != nil {
		t.Fatalf("QuarantinedShards() after reinstate = %v, want nil", got)
	}
	again, err := ix.Search(context.Background(), q.With(WithQueryStats(&qs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(full) {
		t.Fatalf("recovered answer has %d results, want %d", len(again), len(full))
	}
	for i := range again {
		if again[i] != full[i] {
			t.Fatalf("rank %d: recovered %+v != full %+v", i, again[i], full[i])
		}
	}
	if qs.ShardsFailed != 0 || qs.ShardsSearched != 4 || qs.EpsilonBound != 0 {
		t.Fatalf("healthy QueryStats = %d/%d ε=%v, want 4/0 ε=0", qs.ShardsSearched, qs.ShardsFailed, qs.EpsilonBound)
	}
}

func TestQuarantineInsertRefusal(t *testing.T) {
	ix, _, rng := buildFixture(t, 200, 32, Shards(4))
	target := ix.Len() % 4
	if err := ix.QuarantineShard(target); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(randQuery(rng, 32)); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("insert into quarantined shard err = %v, want ErrShardQuarantined", err)
	}
	if err := ix.ReinstateShard(target); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(randQuery(rng, 32)); err != nil {
		t.Fatalf("post-reinstate insert: %v", err)
	}
}

func TestQuarantineHandleValidation(t *testing.T) {
	ix, _, _ := buildFixture(t, 100, 32, Shards(2))
	if err := ix.QuarantineShard(-1); err == nil {
		t.Fatal("QuarantineShard(-1) accepted")
	}
	if err := ix.QuarantineShard(2); err == nil {
		t.Fatal("QuarantineShard(out of range) accepted")
	}
	if err := ix.ReinstateShard(99); err == nil {
		t.Fatal("ReinstateShard(out of range) accepted")
	}
	// QuarantineAfter is validated like every other build option.
	m := mixedMatrix(rand.New(rand.NewSource(77)), 50, 32)
	if _, err := Build(m, QuarantineAfter(-1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("QuarantineAfter(-1) err = %v, want ErrBadConfig", err)
	}
	if ix2, err := Build(m, QuarantineAfter(1), Shards(2)); err != nil {
		t.Fatalf("QuarantineAfter(1): %v", err)
	} else if got := ix2.QuarantinedShards(); got != nil {
		t.Fatalf("fresh index quarantined %v", got)
	}
}

// TestLoadQuarantinedContainer drives the degraded-load path end to end
// through the public API: save a sharded index, corrupt one shard's payload
// bytes, verify the default Load rejects the container, then load it with
// AllowQuarantinedShards and query around the lost shard.
func TestLoadQuarantinedContainer(t *testing.T) {
	ix, _, rng := buildFixture(t, 300, 32, Shards(3))
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// The container layout is opaque at this level, so probe for a byte
	// whose corruption is attributable to a single shard: default Load must
	// fail and the degraded load must succeed with exactly one quarantined
	// shard. Shard payloads dominate the container, so a coarse scan finds
	// one quickly.
	var degraded *Index
	var st LoadStats
	for off := len(blob) / 4; off < len(blob); off += 257 {
		cp := append([]byte(nil), blob...)
		cp[off] ^= 0x40
		if _, err := Load(bytes.NewReader(cp)); err == nil {
			continue // flipped a don't-care byte
		}
		d, err := Load(bytes.NewReader(cp), AllowQuarantinedShards(), WithLoadStats(&st))
		if err != nil || len(st.QuarantinedShards) != 1 {
			continue // corrupted a global section or more than one shard
		}
		degraded = d
		break
	}
	if degraded == nil {
		t.Fatal("no single-shard corruption site found in the container")
	}
	bad := st.QuarantinedShards[0]
	if got := degraded.QuarantinedShards(); len(got) != 1 || got[0] != bad {
		t.Fatalf("QuarantinedShards() = %v, want [%d]", got, bad)
	}

	q := Query{Series: randQuery(rng, 32), K: 4}
	if _, err := degraded.Search(context.Background(), q); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("fail-fast on degraded load err = %v, want ErrShardQuarantined", err)
	}
	var qs QueryStats
	res, err := degraded.Search(context.Background(), q.With(AllowPartial(), WithQueryStats(&qs)))
	if err != nil {
		t.Fatalf("AllowPartial on degraded load: %v", err)
	}
	if len(res) == 0 || qs.ShardsFailed != 1 || qs.ShardsSearched != 2 {
		t.Fatalf("degraded answer: %d results, %d/%d shards", len(res), qs.ShardsSearched, qs.ShardsFailed)
	}
	// A load-quarantined shard's data is gone: it cannot be certified,
	// reinstated, or re-saved.
	if !math.IsInf(qs.EpsilonBound, 1) {
		t.Fatalf("EpsilonBound = %v, want +Inf for an unloadable shard", qs.EpsilonBound)
	}
	if err := degraded.ReinstateShard(bad); err == nil {
		t.Fatal("ReinstateShard on a load-quarantined shard succeeded")
	}
	if err := Save(degraded, &bytes.Buffer{}); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("Save of degraded index err = %v, want ErrShardQuarantined", err)
	}
}

// TestStreamWatchdogPublic pins the SetWatchdog passthrough and the
// ErrStreamStalled sentinel at the public layer: a stuck worker pool turns
// Submit into a bounded failure instead of a hang.
func TestStreamWatchdogPublic(t *testing.T) {
	ix, data, _ := buildFixture(t, 150, 32)
	release := make(chan struct{})
	st, err := ix.NewStream(1, func(qid uint64, res []Result, err error) {
		if err != nil {
			t.Errorf("query %d: %v", qid, err)
		}
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	st.SetWatchdog(30 * time.Millisecond)
	stalled := false
	for i := 0; i < 5; i++ {
		_, err := st.Submit(Query{Series: data.Row(i), K: 2})
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrStreamStalled) {
			t.Fatalf("submit %d err = %v, want ErrStreamStalled", i, err)
		}
		stalled = true
		break
	}
	if !stalled {
		t.Fatal("no submit tripped the watchdog despite a stalled worker")
	}
	close(release)
	deadline := time.After(5 * time.Second)
	for {
		if _, err := st.Submit(Query{Series: data.Row(0), K: 2}); err == nil {
			break
		} else if !errors.Is(err, ErrStreamStalled) {
			t.Fatalf("post-recovery submit: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("stream never recovered after the stall cleared")
		default:
		}
	}
	st.Close()
}
