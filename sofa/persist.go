package sofa

import (
	"io"

	"repro/internal/core"
)

// Save writes the index to w in the versioned container format: float32
// series data in id order, the learned summarization state, and one word
// buffer per shard (so Load rebuilds all shard trees in parallel without
// re-transforming).
func Save(x *Index, w io.Writer) error { return core.Save(x.ix, w) }

// SaveFile writes the index to a file; see Save.
func SaveFile(x *Index, path string) error { return core.SaveFile(x.ix, path) }

// Load reads an index previously written by Save. The shard count is part
// of the saved index.
func Load(r io.Reader) (*Index, error) {
	ix, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return newIndex(ix), nil
}

// LoadFile reads an index from a file; see Load.
func LoadFile(path string) (*Index, error) {
	ix, err := core.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return newIndex(ix), nil
}
