package sofa

import (
	"io"
	"os"

	"repro/internal/core"
)

// LoadStats reports where a Load spent its time and what it did — the
// persistence counterpart of the WithStats query option. DecodeSeconds
// covers container decode and data re-normalization; TreeSeconds is the
// parallel per-shard tree phase, which for a version-3 container is a
// direct shape decode (Splits == 0) rather than a rebuild.
type LoadStats = core.LoadStats

// LoadOption configures Load/LoadFile.
type LoadOption func(*loadConfig)

type loadConfig struct {
	stats *LoadStats
	opts  core.LoadOptions
}

// WithLoadStats records the load's phase timings, container version, byte
// count and re-split count into dst.
func WithLoadStats(dst *LoadStats) LoadOption {
	return func(c *loadConfig) { c.stats = dst }
}

// AllowQuarantinedShards accepts a version-4 container with corrupt shard
// payloads as a degraded index: shards whose per-shard checksum fails load
// with no tree and permanently quarantined — searches skip them (failing
// fail-fast queries, degrading AllowPartial queries with an unbounded ε),
// Insert refuses them, and Save refuses the whole degraded index — while
// every healthy shard loads normally. QuarantinedShards (and
// LoadStats.QuarantinedShards via WithLoadStats) report which shards were
// lost. Without this option any corruption fails the whole load. A container
// whose every shard is corrupt fails to load regardless.
func AllowQuarantinedShards() LoadOption {
	return func(c *loadConfig) { c.opts.QuarantineCorruptShards = true }
}

// Save writes the index to w in the versioned container format (currently
// version 4): float32 series data in id order, the learned summarization
// state, one word buffer per shard, each shard's finalized tree shape with
// its leaf refinement blocks — so Load reconstructs every shard tree by
// direct decode instead of rebuilding it — and per-shard payload checksums,
// so load-time corruption is attributable to (and optionally survivable at)
// shard granularity. Saving an index that holds a load-quarantined shard
// fails with ErrShardQuarantined: the container would silently drop that
// shard's series.
func Save(x *Index, w io.Writer) error { return core.Save(x.ix, w) }

// SaveFile writes the index to a file; see Save.
func SaveFile(x *Index, path string) error { return core.SaveFile(x.ix, path) }

// Load reads an index previously written by Save. All container versions
// load: versions 3 and 4 by direct tree decode, versions 1 and 2 by
// rebuilding shard trees from their saved words. The shard count is part of
// the saved index. Transient read errors from r (the net-style Temporary
// contract) are retried under a bounded backoff before the load fails. Pass
// WithLoadStats to observe the load's phase breakdown, and
// AllowQuarantinedShards to keep the healthy shards of a partially corrupt
// version-4 container.
func Load(r io.Reader, opts ...LoadOption) (*Index, error) {
	var c loadConfig
	for _, opt := range opts {
		opt(&c)
	}
	ix, err := core.LoadWithOptions(r, c.opts, c.stats)
	if err != nil {
		return nil, err
	}
	return newIndex(ix), nil
}

// LoadFile reads an index from a file; see Load.
func LoadFile(path string, opts ...LoadOption) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts...)
}
