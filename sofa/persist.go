package sofa

import (
	"io"
	"os"

	"repro/internal/core"
)

// LoadStats reports where a Load spent its time and what it did — the
// persistence counterpart of the WithStats query option. DecodeSeconds
// covers container decode and data re-normalization; TreeSeconds is the
// parallel per-shard tree phase, which for a version-3 container is a
// direct shape decode (Splits == 0) rather than a rebuild.
type LoadStats = core.LoadStats

// LoadOption configures Load/LoadFile.
type LoadOption func(*loadConfig)

type loadConfig struct {
	stats *LoadStats
}

// WithLoadStats records the load's phase timings, container version, byte
// count and re-split count into dst.
func WithLoadStats(dst *LoadStats) LoadOption {
	return func(c *loadConfig) { c.stats = dst }
}

// Save writes the index to w in the versioned container format (currently
// version 3): float32 series data in id order, the learned summarization
// state, one word buffer per shard, and each shard's finalized tree shape
// with its leaf refinement blocks — so Load reconstructs every shard tree
// by direct decode instead of rebuilding it.
func Save(x *Index, w io.Writer) error { return core.Save(x.ix, w) }

// SaveFile writes the index to a file; see Save.
func SaveFile(x *Index, path string) error { return core.SaveFile(x.ix, path) }

// Load reads an index previously written by Save. All container versions
// load: version 3 by direct tree decode, versions 1 and 2 by rebuilding
// shard trees from their saved words. The shard count is part of the saved
// index. Pass WithLoadStats to observe the load's phase breakdown.
func Load(r io.Reader, opts ...LoadOption) (*Index, error) {
	var c loadConfig
	for _, opt := range opts {
		opt(&c)
	}
	ix, err := core.LoadWithStats(r, c.stats)
	if err != nil {
		return nil, err
	}
	return newIndex(ix), nil
}

// LoadFile reads an index from a file; see Load.
func LoadFile(path string, opts ...LoadOption) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts...)
}
