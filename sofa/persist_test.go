package sofa

import (
	"bytes"
	"context"
	"testing"
)

// WithLoadStats surfaces the load phase breakdown, and a current-format
// (v5) load decodes the shard trees without performing any leaf splits.
func TestLoadStatsIntrospection(t *testing.T) {
	ix, _, rng := buildFixture(t, 400, 32, Shards(2))
	var buf bytes.Buffer
	if err := Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	var st LoadStats
	loaded, err := Load(bytes.NewReader(buf.Bytes()), WithLoadStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 5 {
		t.Errorf("saved container version %d, want 5", st.Version)
	}
	if st.Bytes != int64(buf.Len()) {
		t.Errorf("stats saw %d bytes of a %d-byte container", st.Bytes, buf.Len())
	}
	if st.Splits != 0 {
		t.Errorf("v5 load re-split %d leaves, want 0", st.Splits)
	}
	if st.TotalSeconds <= 0 || st.DecodeSeconds <= 0 {
		t.Errorf("empty phase timings: %+v", st)
	}
	if st.TotalSeconds < st.DecodeSeconds+st.TreeSeconds {
		t.Errorf("phases exceed total: %+v", st)
	}
	// The loaded index still answers.
	if _, err := loaded.Search(context.Background(), Query{Series: randQuery(rng, 32), K: 3}); err != nil {
		t.Fatal(err)
	}
	// Loading without the option still works (options are optional).
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}
