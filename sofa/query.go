package sofa

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// Query is one similarity question: the series to match and how many
// neighbors to return. The zero value of the remaining behavior — exact
// search, no deadline — is the common case; attach options with With:
//
//	q := sofa.Query{Series: s, K: 10}.With(sofa.Epsilon(0.1), sofa.Deadline(t))
//
// One Query value drives every execution engine — Search, SearchInto,
// SearchBatch and Stream.Submit — so per-query k, approximation mode and
// deadline travel with the query rather than with the engine.
type Query struct {
	// Series is the query series (any scale; it is z-normalized internally
	// and not modified). Its length must equal Index.SeriesLen.
	Series []float64
	// K is the number of nearest neighbors to return (>= 1).
	K int

	opts queryOpts
}

// queryOpts is the per-query execution plan accumulated by With.
type queryOpts struct {
	approximate  bool
	epsilon      float64
	deadline     time.Time
	allowPartial bool
	stats        *SearchStats
	qstats       *QueryStats
}

// QueryOption adjusts how one Query executes.
type QueryOption func(*queryOpts)

// With returns a copy of q with the options applied.
func (q Query) With(opts ...QueryOption) Query {
	for _, opt := range opts {
		opt(&q.opts)
	}
	return q
}

// Approximate answers from each shard's best-matching leaf only — the
// classical iSAX-family approximate probe (stage 1 of the exact engine):
// no guarantee, empirically high recall at a tiny fraction of the exact
// cost. The returned distances upper-bound the true k-NN distances.
// Approximate overrides Epsilon: when both options are set, the query runs
// as the guarantee-free best-leaf probe.
func Approximate() QueryOption {
	return func(o *queryOpts) { o.approximate = true }
}

// Epsilon makes the search (1+e)-approximate: every returned distance is
// guaranteed within a factor (1+e) of the corresponding exact k-NN
// distance. e = 0 is exact; larger values prune more and run faster. The
// guarantee does not survive combining with Approximate, which overrides
// this option.
func Epsilon(e float64) QueryOption {
	return func(o *queryOpts) { o.epsilon = e }
}

// Deadline aborts the query with context.DeadlineExceeded once t has
// passed — checked between shard stages, so an expired query stops doing
// work instead of running to completion. In a stream, a query whose
// deadline expires while queued is answered with the error without ever
// being executed.
func Deadline(t time.Time) QueryOption {
	return func(o *queryOpts) { o.deadline = t }
}

// AllowPartial accepts degraded answers. By default a query fails with an
// error wrapping ErrDegraded when any shard cannot contribute — a contained
// panic, an engine fault, or a quarantined shard. With AllowPartial the
// query instead returns the merged results of the surviving shards with nil
// error, and the WithQueryStats option reports how many shards failed plus a
// live ε certificate: every returned distance is within a (1+ε) factor of
// what the complete search would have returned (ε = 0 certifies the partial
// answer identical; ε = +Inf means the failed shards cannot be bounded).
//
// A degraded query that would return zero results still fails — an empty
// answer certifies nothing — and cancellation or deadline expiry remains an
// error regardless: the caller asked the query to stop.
func AllowPartial() QueryOption {
	return func(o *queryOpts) { o.allowPartial = true }
}

// WithStats records the query's work counters (nodes visited, leaves
// refined, lower bounds and real distances computed) into dst after a
// successful Search or SearchInto. Batch and stream execution ignore it.
func WithStats(dst *SearchStats) QueryOption {
	return func(o *queryOpts) { o.stats = dst }
}

// QueryStats describes how one Search or SearchInto call executed: the
// pruning-power work counters plus the fault-isolation outcome — shard
// participation and, for degraded answers, the ε certificate (see
// AllowPartial). For a fully healthy query ShardsFailed is 0 and
// EpsilonBound is 0.
type QueryStats struct {
	SearchStats
	// ShardsSearched and ShardsFailed partition the index's shards for this
	// query; ShardsFailed counts quarantined (skipped) shards as well as
	// shards that faulted mid-query.
	ShardsSearched int
	ShardsFailed   int
	// EpsilonBound is the degraded answer's certificate: every returned
	// distance is within a (1+EpsilonBound) factor of the complete search's.
	// 0 when the answer is provably identical to the complete one; +Inf when
	// the failed shards cannot be bounded.
	EpsilonBound float64
	// Live and Tombstoned snapshot the index's mutation state as the query
	// started: live series searched, and deleted-but-unreclaimed rows the
	// refinement stage skipped over.
	Live       int
	Tombstoned int
	// Compactions and Relearns are the index's lifetime counts of shard
	// compactions and of compactions that re-learned a shard's SFA
	// quantization; RelearnChurnFraction echoes the configured re-learn
	// threshold (0 when disabled), so a query's answer records the
	// adaptation policy it ran under.
	Compactions          int64
	Relearns             int64
	RelearnChurnFraction float64
}

// WithQueryStats records the query's work counters and fault-isolation
// outcome into dst after a successful Search or SearchInto — the degraded-
// answer half (shard counts, ε certificate) is what AllowPartial callers
// inspect to decide whether a partial answer is good enough. Batch and
// stream execution ignore it.
func WithQueryStats(dst *QueryStats) QueryOption {
	return func(o *queryOpts) { o.qstats = dst }
}

// plan validates q against the index and lowers it to the internal
// execution plan. All validation failures are sentinel errors.
func (x *Index) plan(q Query) (core.Plan, error) {
	if len(q.Series) != x.SeriesLen() {
		return core.Plan{}, fmt.Errorf("%w: query length %d, want %d", ErrBadSeriesLength, len(q.Series), x.SeriesLen())
	}
	if q.K < 1 {
		return core.Plan{}, fmt.Errorf("%w: got %d", ErrBadK, q.K)
	}
	if q.opts.epsilon < 0 {
		return core.Plan{}, fmt.Errorf("%w: got %v", ErrBadEpsilon, q.opts.epsilon)
	}
	return core.Plan{
		K:            q.K,
		Epsilon:      q.opts.epsilon,
		Approximate:  q.opts.approximate,
		Deadline:     q.opts.deadline,
		AllowPartial: q.opts.allowPartial,
	}, nil
}

// Search answers q, returning its neighbors in ascending distance order.
// The returned slice is caller-owned: it is freshly allocated, never
// aliases index-internal scratch, and remains valid forever. Use SearchInto
// to avoid the per-call allocation in steady-state loops.
//
// ctx cancellation (and q's Deadline option) abort the query between shard
// stages with the context error. Search is safe to call concurrently from
// any number of goroutines; each call internally uses the index's
// configured worker parallelism (the paper's one-query-at-a-time protocol).
func (x *Index) Search(ctx context.Context, q Query) ([]Result, error) {
	return x.searchInto(ctx, q, nil)
}

// SearchInto is Search with caller-provided result memory: answers are
// appended into buf[:0] and the extended slice is returned, so a loop that
// passes the previous result back in performs zero allocations in steady
// state. The returned slice shares buf's backing array (never
// index-internal scratch) — results are overwritten by the next SearchInto
// call with the same buf, exactly like append.
//
// On error the returned slice is buf[:0], not nil, so the steady-state
// pattern `buf, err = ix.SearchInto(ctx, q, buf)` keeps its warm buffer
// across expected failures (expired deadlines, cancellations).
func (x *Index) SearchInto(ctx context.Context, q Query, buf []Result) ([]Result, error) {
	return x.searchInto(ctx, q, buf[:0])
}

// searchInto runs one query on a pooled parallel searcher, appending the
// answers to dst. On error it returns dst unmodified (preserving the
// caller's buffer capacity) alongside the error.
func (x *Index) searchInto(ctx context.Context, q Query, dst []Result) ([]Result, error) {
	p, err := x.plan(q)
	if err != nil {
		return dst, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := x.searchers.Get().(*core.Searcher)
	res, err := s.SearchPlan(ctx, q.Series, p, dst)
	if err != nil {
		x.searchers.Put(s)
		return dst, err
	}
	if q.opts.stats != nil {
		*q.opts.stats = s.LastStats()
	}
	if q.opts.qstats != nil {
		m := s.LastMeta()
		*q.opts.qstats = QueryStats{
			SearchStats:          s.LastStats(),
			ShardsSearched:       m.ShardsSearched,
			ShardsFailed:         m.ShardsFailed,
			EpsilonBound:         m.EpsilonBound,
			Live:                 m.Live,
			Tombstoned:           m.Tombstoned,
			Compactions:          m.Compactions,
			Relearns:             m.Relearns,
			RelearnChurnFraction: m.RelearnChurnFraction,
		}
	}
	x.searchers.Put(s)
	return res, nil
}

// SearchBatch answers a batch of queries with inter-query parallelism: up
// to workers queries run concurrently (workers <= 0 selects GOMAXPROCS),
// each handled end-to-end by a pooled single-threaded engine — the FAISS
// mini-batch protocol from the paper's Section V. Queries may mix k values,
// approximation modes and deadlines. Results are in query order and
// caller-owned.
//
// ctx is checked before every query starts and between shard stages inside
// each query, so cancellation stops a large batch mid-flight. The first
// error — a context error or one query's expired deadline — aborts the
// whole batch; per-query error isolation is what streams are for.
func (x *Index) SearchBatch(ctx context.Context, qs []Query, workers int) ([][]Result, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("%w: empty query batch", ErrEmptyData)
	}
	pqs := make([]core.PlanQuery, len(qs))
	for i, q := range qs {
		p, err := x.plan(q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		pqs[i] = core.PlanQuery{Series: q.Series, Plan: p}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return x.ix.Collection().SearchBatchPlan(ctx, pqs, workers)
}
