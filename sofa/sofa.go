// Package sofa is the public API of the SOFA reproduction: exact and
// approximate k-nearest-neighbor similarity search over collections of
// equal-length data series (and fixed-dimension vectors) under z-normalized
// Euclidean distance.
//
// SOFA (ICDE 2025) pairs the MESSI-style parallel in-memory tree index with
// a learned symbolic summarization — SFA, Fourier coefficients selected by
// variance and quantized with bins learned from the data — which keeps its
// pruning power on the high-frequency series where classical mean-based
// iSAX summarizations collapse. This package fronts the full reproduction
// stack: the learned quantization, the cache-conscious zero-allocation
// query engine with runtime-dispatched SIMD distance kernels, a sharded
// collection layer whose shards prune against one shared best-so-far (so a
// sharded index answers exactly like a single tree), batched and streaming
// execution, and shard-aware persistence.
//
// Construction uses functional options:
//
//	ix, err := sofa.Build(data, sofa.SFA(), sofa.Shards(4), sofa.LeafSize(512))
//
// Queries are values executed under a context:
//
//	res, err := ix.Search(ctx, sofa.Query{Series: q, K: 10})
//
// with per-query options for approximate modes and deadlines:
//
//	q := sofa.Query{Series: series, K: 5}.With(sofa.Epsilon(0.1), sofa.Deadline(t))
//
// Search returns caller-owned results; SearchInto is the allocation-free
// variant for steady-state loops; SearchBatch and NewStream provide
// throughput-oriented execution. Everything under internal/ (including
// internal/core) is unstable implementation detail — import only this
// package.
package sofa // import "repro/sofa"

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sfa"
)

// Sentinel errors returned (possibly wrapped with detail) by Build and the
// query paths. Match them with errors.Is.
var (
	// ErrEmptyData is returned when a build or batch is given no series.
	ErrEmptyData = errors.New("sofa: empty data")
	// ErrBadSeriesLength is returned when a series' length does not match
	// the collection (ragged build rows, wrong query length).
	ErrBadSeriesLength = errors.New("sofa: series length mismatch")
	// ErrBadK is returned when a query asks for fewer than one neighbor.
	ErrBadK = errors.New("sofa: k must be at least 1")
	// ErrBadEpsilon is returned when a query's epsilon is negative.
	ErrBadEpsilon = errors.New("sofa: epsilon must not be negative")
	// ErrBadConfig is returned by Build for invalid option values.
	ErrBadConfig = errors.New("sofa: invalid configuration")
	// ErrStreamClosed is returned by Stream.Submit after Close.
	ErrStreamClosed = errors.New("sofa: stream is closed")
)

// Fault-isolation sentinels. These are shared with the engine so errors.Is
// matches anywhere in a wrapped chain: every shard-fault error produced by a
// query wraps ErrDegraded, and operations refused because of quarantine wrap
// ErrShardQuarantined (which itself wraps ErrDegraded).
var (
	// ErrDegraded reports that one or more shards did not contribute to an
	// operation — a contained panic, an engine fault, or a quarantined shard.
	// Fail-fast queries (the default) return it; AllowPartial queries absorb
	// it into a degraded answer unless nothing survived.
	ErrDegraded = core.ErrDegraded
	// ErrShardQuarantined reports an operation against a quarantined shard:
	// a query routed to it (fail-fast), an Insert destined for it, or a Save
	// of a collection holding one.
	ErrShardQuarantined = core.ErrShardQuarantined
	// ErrStreamStalled is returned by Stream.Submit when every stream worker
	// has been stuck past the watchdog deadline (see Stream.SetWatchdog).
	ErrStreamStalled = core.ErrStreamStalled
)

// Mutation sentinels, returned by Delete and Upsert. Match them with
// errors.Is.
var (
	// ErrNotFound reports a mutation against an id that was never assigned.
	ErrNotFound = core.ErrNotFound
	// ErrTombstoned reports a mutation against a deleted id: ids are retired
	// permanently — deletion is not reversible, and Upsert replaces live
	// series only (it does not resurrect).
	ErrTombstoned = core.ErrTombstoned
)

// Durability sentinels, produced by Open's write-ahead-log recovery. By
// default both are absorbed into a lenient recovery (the valid WAL prefix is
// replayed, the damaged tail discarded and reported via RecoveryStats);
// under StrictRecovery they fail Open instead.
var (
	// ErrWALCorrupt reports write-ahead-log bytes that fail validation — a
	// checksum mismatch, a forged record length, or a broken sequence.
	ErrWALCorrupt = core.ErrWALCorrupt
	// ErrRecoveryTruncated reports a write-ahead log that ends mid-record:
	// the torn tail a crash during an append leaves behind.
	ErrRecoveryTruncated = core.ErrRecoveryTruncated
)

// Method identifies the summarization behind an index.
type Method = core.Method

// The two supported summarizations: the paper's contribution and its
// state-of-the-art baseline over the identical tree.
const (
	MethodSOFA  Method = core.SOFA
	MethodMESSI Method = core.MESSI
)

// config collects the option values; zero values select the paper's
// defaults (word length 16, alphabet 256, leaf capacity 1024, SFA with
// equi-width binning and variance selection learned from a 1% sample, one
// shard).
type config struct {
	cfg core.Config
}

// Option configures Build.
type Option func(*config)

// SFA selects the paper's index: SFA summarization (learned DFT
// quantization) over the MESSI tree. This is the default.
func SFA() Option { return func(c *config) { c.cfg.Method = core.SOFA } }

// MESSI selects the baseline index: iSAX summarization (PAA means under
// fixed Normal-distribution breakpoints) over the same tree.
func MESSI() Option { return func(c *config) { c.cfg.Method = core.MESSI } }

// WordLength sets the symbols per summarization word (default 16).
func WordLength(l int) Option { return func(c *config) { c.cfg.WordLength = l } }

// SymbolBits sets the bits per symbol (default 8, i.e. alphabet 256).
func SymbolBits(b int) Option { return func(c *config) { c.cfg.Bits = b } }

// LeafSize sets the tree leaf capacity (default 1024).
func LeafSize(n int) Option { return func(c *config) { c.cfg.LeafCapacity = n } }

// Workers sets the build/query parallelism budget across shards (default
// GOMAXPROCS).
func Workers(n int) Option { return func(c *config) { c.cfg.Workers = n } }

// Shards sets the number of index shards (default 1). Each shard is an
// independent tree over a round-robin 1/S slice of the series; searches
// merge through a shared best-so-far, so results are identical to a
// single-shard build.
func Shards(s int) Option { return func(c *config) { c.cfg.Shards = s } }

// NoLeafBlocks disables the per-leaf contiguous word blocks, roughly
// halving word memory at a refinement-locality cost — for
// memory-constrained builds (e.g. many shards per machine).
func NoLeafBlocks() Option { return func(c *config) { c.cfg.NoLeafBlocks = true } }

// PerSeriesLBD reverts query refinement to one lower-bound kernel call per
// series instead of one block-granularity call per leaf. Results are
// identical either way; the knob exists for same-binary kernel A/Bs and as
// an escape hatch.
func PerSeriesLBD() Option { return func(c *config) { c.cfg.PerSeriesLBD = true } }

// EquiDepthBinning switches SFA to equi-depth (equal sample mass) bins,
// the original SFA strategy; the default is the paper's equi-width bins.
func EquiDepthBinning() Option { return func(c *config) { c.cfg.Binning = sfa.EquiDepth } }

// FirstCoefficients switches SFA coefficient selection to the classical
// low-pass choice (first l values); the default keeps the l values with
// the highest variance over the sample.
func FirstCoefficients() Option { return func(c *config) { c.cfg.Selection = sfa.FirstCoefficients } }

// SampleRate sets the fraction of the collection the SFA bins are learned
// from (default 0.01).
func SampleRate(r float64) Option { return func(c *config) { c.cfg.SampleRate = r } }

// MaxCoeffs sets the number of candidate complex DFT coefficients SFA
// selects from (default 16).
func MaxCoeffs(m int) Option { return func(c *config) { c.cfg.MaxCoeffs = m } }

// Seed sets the sampling seed for the SFA learning stage (default 1).
func Seed(s int64) Option { return func(c *config) { c.cfg.Seed = s } }

// QuarantineAfter sets how many consecutive panicking queries quarantine a
// shard (default 3). A shard whose tree fails its structural invariant check
// after a contained panic is quarantined immediately regardless of this
// threshold. See the package's failure semantics: quarantined shards are
// skipped by searches (degrading them), refused by Insert, and reported by
// QuarantinedShards.
func QuarantineAfter(n int) Option { return func(c *config) { c.cfg.QuarantineAfter = n } }

// Compaction is the tombstone-reclamation policy of a mutable index: when a
// shard is rebuilt without its deleted rows, and when such a rebuild also
// re-learns the shard's SFA quantization from the surviving series. The zero
// value disables automatic compaction (explicit Compact/CompactShard calls
// still work).
type Compaction = core.CompactionPolicy

// CompactionPolicy sets the index's compaction policy. With
// p.MaxTombstoneFraction > 0, MaybeCompact (and, with p.Auto, a background
// pass after each mutation) rebuilds any shard whose tombstoned fraction
// reaches it; with p.RelearnChurnFraction > 0 a compaction whose accumulated
// churn crosses that fraction of the shard's live series re-learns the SFA
// bins from the survivors. Re-learning changes only pruning power, never
// results.
func CompactionPolicy(p Compaction) Option { return func(c *config) { c.cfg.Compaction = p } }

// validate rejects option values Build must not silently default.
func (c *config) validate() error {
	cfg := c.cfg
	switch {
	case cfg.WordLength < 0:
		return fmt.Errorf("%w: word length %d", ErrBadConfig, cfg.WordLength)
	case cfg.Bits < 0 || cfg.Bits > 8:
		return fmt.Errorf("%w: symbol bits %d (want 1..8)", ErrBadConfig, cfg.Bits)
	case cfg.LeafCapacity < 0:
		return fmt.Errorf("%w: leaf size %d", ErrBadConfig, cfg.LeafCapacity)
	case cfg.Workers < 0:
		return fmt.Errorf("%w: workers %d", ErrBadConfig, cfg.Workers)
	case cfg.Shards < 0:
		return fmt.Errorf("%w: shards %d", ErrBadConfig, cfg.Shards)
	case cfg.SampleRate < 0 || cfg.SampleRate > 1:
		return fmt.Errorf("%w: sample rate %v (want 0..1)", ErrBadConfig, cfg.SampleRate)
	case cfg.MaxCoeffs < 0:
		return fmt.Errorf("%w: max coefficients %d", ErrBadConfig, cfg.MaxCoeffs)
	case cfg.QuarantineAfter < 0:
		return fmt.Errorf("%w: quarantine threshold %d", ErrBadConfig, cfg.QuarantineAfter)
	case cfg.Compaction.MaxTombstoneFraction > 1:
		return fmt.Errorf("%w: max tombstone fraction %v (want 0..1)", ErrBadConfig, cfg.Compaction.MaxTombstoneFraction)
	}
	return nil
}

// Index is a built similarity index over a collection of series. It is safe
// for concurrent Search/SearchInto/SearchBatch/stream use from any number of
// goroutines. Mutations — Insert, Delete, Upsert, compaction — are safe with
// each other but must be synchronized against searches (see each method's
// contract).
type Index struct {
	ix *core.Index

	// searchers pools per-query engines with full intra-query parallelism
	// (shards fan out, and each shard tree applies its worker budget), so
	// Search and SearchInto are both concurrent-safe and allocation-free in
	// steady state.
	searchers sync.Pool
}

// Build constructs an index over data using the paper's defaults, adjusted
// by options. The collection should be z-normalized first
// (data.ZNormalizeAll()): all similarity in this library is z-normalized
// Euclidean distance, and queries are normalized internally under that
// contract.
//
// Option validation failures return errors wrapping ErrBadConfig; an empty
// collection returns ErrEmptyData.
func Build(data *Matrix, opts ...Option) (*Index, error) {
	if data == nil || data.Len() == 0 {
		return nil, ErrEmptyData
	}
	var c config
	for _, opt := range opts {
		opt(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	ix, err := core.Build(data, c.cfg)
	if err != nil {
		// Both %w: errors.Is finds the sentinel and the engine's cause.
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	return newIndex(ix), nil
}

// newIndex wraps a built core index with the public searcher pooling.
func newIndex(ix *core.Index) *Index {
	x := &Index{ix: ix}
	x.searchers.New = func() any { return ix.Collection().NewSearcher() }
	return x
}

// Len returns the number of live (searchable) series: deleted series stop
// counting immediately, before compaction reclaims their storage.
func (x *Index) Len() int { return x.ix.Len() }

// SeriesLen returns the length every indexed (and queried) series must have.
func (x *Index) SeriesLen() int { return x.ix.SeriesLen() }

// Shards returns the number of index shards.
func (x *Index) Shards() int { return x.ix.Shards() }

// Method reports whether this is a SOFA or MESSI index.
func (x *Index) Method() Method { return x.ix.Method() }

// BuildSeconds returns the total build time across the learn, transform and
// tree phases.
func (x *Index) BuildSeconds() float64 { return x.ix.BuildSeconds() }

// Stats returns the aggregate tree-structure statistics across shards.
func (x *Index) Stats() TreeStats { return x.ix.Stats() }

// MeanSelectedCoefficient reports the mean index of the DFT coefficients
// the learned SFA selection kept — the paper's diagnostic for how far
// beyond the low-pass prefix variance selection reaches. ok is false for a
// MESSI index, which has no learned selection.
func (x *Index) MeanSelectedCoefficient() (mean float64, ok bool) {
	q := x.ix.SFAQuantizer()
	if q == nil {
		return 0, false
	}
	return q.MeanCoefficientIndex(), true
}

// Insert adds one series to the index (z-normalized internally) and returns
// its stable ID. Mutations (Insert, Delete, Upsert) may run concurrently
// with each other and with compaction, but not with searches — synchronize
// externally for mixed workloads. The series is summarized with the index's
// existing learned quantization; bins are re-learned only at a compaction
// that crosses the configured CompactionPolicy's RelearnChurnFraction.
// Inserting into a quarantined shard fails with ErrShardQuarantined (the
// series would otherwise be stranded in a tree searches skip).
func (x *Index) Insert(series []float64) (ID, error) {
	if len(series) != x.SeriesLen() {
		return 0, fmt.Errorf("%w: series length %d, want %d", ErrBadSeriesLength, len(series), x.SeriesLen())
	}
	return x.ix.Insert(series)
}

// Delete removes the series with the given id from the index: it stops
// appearing in search results immediately, its storage is reclaimed at the
// next compaction, and the id is permanently retired (never reused).
// Deleting an unknown id returns ErrNotFound; deleting twice returns
// ErrTombstoned. Same synchronization contract as Insert.
func (x *Index) Delete(id ID) error { return x.ix.Delete(id) }

// Upsert replaces the series stored under id (z-normalized internally),
// keeping the id stable: searches observe the id with its old series or its
// new one, never both. Upserting an unknown id returns ErrNotFound, a
// deleted one ErrTombstoned — an upsert is a replacement, not a
// resurrection. Same synchronization contract as Insert.
func (x *Index) Upsert(id ID, series []float64) error {
	if len(series) != x.SeriesLen() {
		return fmt.Errorf("%w: series length %d, want %d", ErrBadSeriesLength, len(series), x.SeriesLen())
	}
	return x.ix.Upsert(id, series)
}

// CompactShard rebuilds one shard without its deleted rows and atomically
// swaps the rebuilt shard in (RCU: in-flight queries keep the state they
// started with and never block). On a SOFA index whose accumulated churn has
// crossed the configured RelearnChurnFraction, the rebuild also re-learns
// the shard's SFA quantization from the survivors. Live ids, search results
// and result ordering are unchanged by compaction.
func (x *Index) CompactShard(i int) error { return x.ix.CompactShard(i) }

// Compact applies the configured compaction policy across all shards,
// rebuilding every shard whose tombstoned fraction has reached
// MaxTombstoneFraction — the explicit entry point for callers that schedule
// compaction themselves (with Compaction.Auto it also runs in the background
// after mutations).
func (x *Index) Compact() error { return x.ix.MaybeCompact() }

// Tombstoned returns the number of deleted-but-unreclaimed rows currently
// carried by the index — the space a compaction would reclaim. Len counts
// live series only, so Len()+Tombstoned() is the physical row count.
func (x *Index) Tombstoned() int { return x.ix.Collection().Tombstoned() }

// QuarantineShard manually quarantines one shard: subsequent searches skip
// it (failing fail-fast queries with ErrShardQuarantined, degrading
// AllowPartial queries) and Insert refuses it. It is the operational handle
// behind the automatic quarantine policy — useful for taking a shard out of
// service deterministically (maintenance, suspected corruption) and for
// exercising degraded behavior in tests.
func (x *Index) QuarantineShard(i int) error {
	return x.ix.Collection().Quarantine(i)
}

// ReinstateShard clears one shard's quarantine and fault history after the
// cause has been fixed. Reinstating a shard that lost its tree (quarantined
// at load time by AllowQuarantinedShards) fails: the data is gone until the
// collection is rebuilt.
func (x *Index) ReinstateShard(i int) error {
	return x.ix.Collection().Reinstate(i)
}

// QuarantinedShards returns the indices of the currently quarantined shards
// in ascending order (nil when the index is fully healthy).
func (x *Index) QuarantinedShards() []int {
	return x.ix.Collection().Quarantined()
}
