package sofa

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// mixedMatrix generates the test collection used across the repo: a third
// random walks, a third noisy sines, a third white noise — z-normalized.
func mixedMatrix(rng *rand.Rand, count, n int) *Matrix {
	m := NewMatrix(count, n)
	for i := 0; i < count; i++ {
		row := m.Row(i)
		switch i % 3 {
		case 0:
			v := 0.0
			for j := range row {
				v += rng.NormFloat64()
				row[j] = v
			}
		case 1:
			f := 3 + rng.Float64()*float64(n/2-4)
			for j := range row {
				row[j] = math.Sin(2*math.Pi*f*float64(j)/float64(n)) + 0.2*rng.NormFloat64()
			}
		default:
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
	}
	m.ZNormalizeAll()
	return m
}

func randQuery(rng *rand.Rand, n int) []float64 {
	q := make([]float64, n)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q
}

// bruteKNN returns the k smallest squared z-normalized distances between
// query and every row of m, ascending.
func bruteKNN(m *Matrix, query []float64, k int) []float64 {
	qz := append([]float64(nil), query...)
	znormalize(qz)
	dists := make([]float64, m.Len())
	for i := range dists {
		var d float64
		row := m.Row(i)
		for j := range qz {
			diff := row[j] - qz[j]
			d += diff * diff
		}
		dists[i] = d
	}
	sort.Float64s(dists)
	if k > len(dists) {
		k = len(dists)
	}
	return dists[:k]
}

func znormalize(x []float64) {
	var mean, m2 float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		m2 += (v - mean) * (v - mean)
	}
	std := math.Sqrt(m2 / float64(len(x)))
	if std < 1e-12 {
		std = 1
	}
	for i := range x {
		x[i] = (x[i] - mean) / std
	}
}

// buildFixture builds a small deterministic index shared by many tests.
func buildFixture(t testing.TB, count, n int, opts ...Option) (*Index, *Matrix, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	m := mixedMatrix(rng, count, n)
	ix, err := Build(m, append([]Option{SampleRate(0.2), LeafSize(64)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ix, m, rng
}

func TestBuildSentinelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mixedMatrix(rng, 50, 32)
	cases := []struct {
		name string
		do   func() error
		want error
	}{
		{"nil data", func() error { _, err := Build(nil); return err }, ErrEmptyData},
		{"empty data", func() error { _, err := Build(NewMatrix(0, 16)); return err }, ErrEmptyData},
		{"negative shards", func() error { _, err := Build(m, Shards(-1)); return err }, ErrBadConfig},
		{"negative leaf", func() error { _, err := Build(m, LeafSize(-8)); return err }, ErrBadConfig},
		{"bad sample rate", func() error { _, err := Build(m, SampleRate(1.5)); return err }, ErrBadConfig},
		{"bad bits", func() error { _, err := Build(m, SymbolBits(12)); return err }, ErrBadConfig},
		{"negative workers", func() error { _, err := Build(m, Workers(-2)); return err }, ErrBadConfig},
		{"no rows", func() error { _, err := FromRows(nil); return err }, ErrEmptyData},
		{"ragged rows", func() error {
			_, err := FromRows([][]float64{make([]float64, 8), make([]float64, 9)})
			return err
		}, ErrBadSeriesLength},
		{"zero-length rows", func() error { _, err := FromRows([][]float64{{}}); return err }, ErrBadSeriesLength},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.do(); !errors.Is(err, tc.want) {
				t.Errorf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

func TestQuerySentinelErrors(t *testing.T) {
	ix, m, rng := buildFixture(t, 300, 32)
	ctx := context.Background()
	good := randQuery(rng, 32)
	cases := []struct {
		name string
		do   func() error
		want error
	}{
		{"search wrong length", func() error {
			_, err := ix.Search(ctx, Query{Series: make([]float64, 31), K: 1})
			return err
		}, ErrBadSeriesLength},
		{"search k=0", func() error {
			_, err := ix.Search(ctx, Query{Series: good, K: 0})
			return err
		}, ErrBadK},
		{"search negative epsilon", func() error {
			_, err := ix.Search(ctx, Query{Series: good, K: 1}.With(Epsilon(-0.5)))
			return err
		}, ErrBadEpsilon},
		{"searchinto k<1", func() error {
			_, err := ix.SearchInto(ctx, Query{Series: good, K: -3}, nil)
			return err
		}, ErrBadK},
		{"batch empty", func() error {
			_, err := ix.SearchBatch(ctx, nil, 0)
			return err
		}, ErrEmptyData},
		{"batch bad query", func() error {
			_, err := ix.SearchBatch(ctx, []Query{{Series: good, K: 1}, {Series: good, K: 0}}, 0)
			return err
		}, ErrBadK},
		{"batch wrong length", func() error {
			_, err := ix.SearchBatch(ctx, []Query{{Series: make([]float64, 5), K: 1}}, 0)
			return err
		}, ErrBadSeriesLength},
		{"insert wrong length", func() error {
			_, err := ix.Insert(make([]float64, 7))
			return err
		}, ErrBadSeriesLength},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.do(); !errors.Is(err, tc.want) {
				t.Errorf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
	_ = m
}

func TestStreamSentinelErrors(t *testing.T) {
	ix, m, rng := buildFixture(t, 200, 32)
	if _, err := ix.NewStream(1, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil handler: got %v, want ErrBadConfig", err)
	}
	st, err := ix.NewStream(2, func(uint64, []Result, error) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(Query{Series: randQuery(rng, 32), K: 0}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 submit: got %v, want ErrBadK", err)
	}
	if _, err := st.Submit(Query{Series: make([]float64, 3), K: 1}); !errors.Is(err, ErrBadSeriesLength) {
		t.Errorf("short submit: got %v, want ErrBadSeriesLength", err)
	}
	if _, err := st.Submit(Query{Series: m.Row(0), K: 1}); err != nil {
		t.Fatalf("good submit: %v", err)
	}
	st.Close()
	st.Close() // idempotent
	if _, err := st.Submit(Query{Series: m.Row(0), K: 1}); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("submit after close: got %v, want ErrStreamClosed", err)
	}
}

// Search through the public API must return exactly the brute-force k-NN
// distances, for single- and multi-shard builds and for both methods.
func TestSearchExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"SFA-1shard", nil},
		{"SFA-4shards", []Option{Shards(4)}},
		{"MESSI", []Option{MESSI()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, m, rng := buildFixture(t, 600, 48, tc.opts...)
			ctx := context.Background()
			for qi := 0; qi < 8; qi++ {
				q := randQuery(rng, 48)
				res, err := ix.Search(ctx, Query{Series: q, K: 5})
				if err != nil {
					t.Fatal(err)
				}
				want := bruteKNN(m, q, 5)
				if len(res) != len(want) {
					t.Fatalf("got %d results, want %d", len(res), len(want))
				}
				for i := range want {
					if math.Abs(res[i].Dist-want[i]) > 1e-7*(want[i]+1) {
						t.Fatalf("rank %d: got %v want %v", i, res[i].Dist, want[i])
					}
				}
			}
		})
	}
}

// Epsilon and Approximate queries answer within their documented bounds.
func TestApproximateModes(t *testing.T) {
	ix, m, rng := buildFixture(t, 600, 48)
	ctx := context.Background()
	for qi := 0; qi < 6; qi++ {
		q := randQuery(rng, 48)
		exact := bruteKNN(m, q, 3)
		eps, err := ix.Search(ctx, Query{Series: q, K: 3}.With(Epsilon(0.2)))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range eps {
			if r.Dist > exact[i]*1.2*1.2+1e-9 {
				t.Fatalf("epsilon rank %d: %v exceeds (1+eps)^2 * %v", i, r.Dist, exact[i])
			}
		}
		appr, err := ix.Search(ctx, Query{Series: q, K: 3}.With(Approximate()))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range appr {
			if r.Dist < exact[i]-1e-9 {
				t.Fatalf("approximate rank %d: %v below exact %v", i, r.Dist, exact[i])
			}
		}
	}
}

// Search results must be caller-owned: immune to any number of subsequent
// queries on the same index (which reuse the pooled internal searchers).
func TestSearchResultsCallerOwned(t *testing.T) {
	ix, _, rng := buildFixture(t, 500, 32)
	ctx := context.Background()
	q0 := randQuery(rng, 32)
	res, err := ix.Search(ctx, Query{Series: q0, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]Result(nil), res...)
	for i := 0; i < 25; i++ {
		if _, err := ix.Search(ctx, Query{Series: randQuery(rng, 32), K: 10}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapshot {
		if res[i] != snapshot[i] {
			t.Fatalf("result %d mutated by later searches: %v != %v (Search must copy)", i, res[i], snapshot[i])
		}
	}
}

// SearchInto appends into the caller's buffer: same backing array across
// calls (the documented overwrite semantics), zero allocations once warm.
func TestSearchIntoReusesBuffer(t *testing.T) {
	ix, _, rng := buildFixture(t, 500, 32, Workers(1))
	ctx := context.Background()
	q := randQuery(rng, 32)
	buf := make([]Result, 0, 16)
	r1, err := ix.SearchInto(ctx, Query{Series: q, K: 10}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 10 || &r1[0] != &buf[:1][0] {
		t.Fatal("SearchInto must append into the provided buffer")
	}
	r2, err := ix.SearchInto(ctx, Query{Series: randQuery(rng, 32), K: 10}, r1)
	if err != nil {
		t.Fatal(err)
	}
	if &r2[0] != &r1[0] {
		t.Fatal("SearchInto with a reused buffer must reuse its backing array")
	}

	if raceEnabled {
		// The race detector makes sync.Pool randomly drop items, so the
		// allocation count below would be spuriously nonzero.
		return
	}
	warmQ := Query{Series: q, K: 10}
	res := r2
	avg := testing.AllocsPerRun(50, func() {
		var err error
		res, err = ix.SearchInto(ctx, warmQ, res)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state SearchInto allocates %v allocs/op, want 0", avg)
	}
}

// SearchBatch agrees with Search and supports mixed per-query k.
func TestSearchBatchMixedK(t *testing.T) {
	ix, _, rng := buildFixture(t, 500, 32, Shards(2))
	ctx := context.Background()
	qs := make([]Query, 12)
	for i := range qs {
		qs[i] = Query{Series: randQuery(rng, 32), K: 1 + i%5}
	}
	out, err := ix.SearchBatch(ctx, qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if len(res) != qs[i].K {
			t.Fatalf("query %d: got %d results, want %d", i, len(res), qs[i].K)
		}
		single, err := ix.Search(ctx, qs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if res[j] != single[j] {
				t.Fatalf("query %d rank %d: batch %v != single %v", i, j, res[j], single[j])
			}
		}
	}
}

// Two in-flight stream queries with different k must both return the
// correct result counts (the per-query-k regression the redesign enables).
func TestStreamPerQueryK(t *testing.T) {
	ix, _, rng := buildFixture(t, 500, 32)
	var mu sync.Mutex
	got := map[uint64]int{}
	st, err := ix.NewStream(4, func(qid uint64, res []Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("qid %d: %v", qid, err)
			return
		}
		got[qid] = len(res)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]int{}
	// Alternate two k values so queries with different k overlap in flight.
	for i := 0; i < 40; i++ {
		k := 3
		if i%2 == 1 {
			k = 11
		}
		qid, err := st.Submit(Query{Series: randQuery(rng, 32), K: k})
		if err != nil {
			t.Fatal(err)
		}
		want[qid] = k
	}
	st.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("answered %d queries, want %d", len(got), len(want))
	}
	for qid, k := range want {
		if got[qid] != k {
			t.Errorf("qid %d: got %d results, want %d", qid, got[qid], k)
		}
	}
}

// WithStats surfaces the pruning counters.
func TestWithStats(t *testing.T) {
	ix, _, rng := buildFixture(t, 500, 32)
	var st SearchStats
	_, err := ix.Search(context.Background(), Query{Series: randQuery(rng, 32), K: 5}.With(WithStats(&st)))
	if err != nil {
		t.Fatal(err)
	}
	if st.SeriesED == 0 && st.SeriesLBD == 0 && st.NodesVisited == 0 {
		t.Error("WithStats recorded no work counters")
	}
}

// Save/Load round-trips through the public API, preserving answers.
func TestSaveLoadRoundTrip(t *testing.T) {
	ix, _, rng := buildFixture(t, 300, 32, Shards(2))
	ctx := context.Background()
	q := randQuery(rng, 32)
	want, err := ix.Search(ctx, Query{Series: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ix.sofa"
	if err := SaveFile(ix, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Search(ctx, Query{Series: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-5*(want[i].Dist+1) {
			t.Fatalf("rank %d: loaded %v != built %v", i, got[i], want[i])
		}
	}
}

// A deadline already expired at submit time is shed by the stream without
// executing the query.
func TestStreamShedsExpiredDeadline(t *testing.T) {
	ix, _, rng := buildFixture(t, 300, 32)
	var mu sync.Mutex
	errs := map[uint64]error{}
	st, err := ix.NewStream(2, func(qid uint64, res []Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		errs[qid] = err
	})
	if err != nil {
		t.Fatal(err)
	}
	qid, err := st.Submit(Query{Series: randQuery(rng, 32), K: 3}.With(Deadline(time.Now().Add(-time.Second))))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	mu.Lock()
	defer mu.Unlock()
	if !errors.Is(errs[qid], context.DeadlineExceeded) {
		t.Errorf("expired query answered with %v, want context.DeadlineExceeded", errs[qid])
	}
}
