package sofa

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// Stream is the sustained-traffic query engine: a fixed pool of persistent
// worker goroutines consuming submitted queries from a bounded channel and
// delivering answers through a callback. Created once and reused for the
// life of a workload, it performs no per-query setup allocations — the
// engine for serving steady traffic, where SearchBatch's per-call
// scaffolding and Search's per-call latency focus both fit poorly.
//
// Each submission carries its own Query, so in-flight queries may mix k
// values, approximation modes and deadlines.
type Stream struct {
	x  *Index
	st *core.Stream
}

// NewStream starts a streaming engine over the index with the given number
// of worker goroutines (workers <= 0 selects GOMAXPROCS). The bounded
// submit channel holds up to two queries per worker; when it is full,
// Submit blocks — that backpressure is the engine's flow control.
//
// handle is invoked once per submitted query, possibly concurrently from
// different workers and in completion (not submission) order. Unlike
// Search, the res slice is CALLBACK-SCOPED: it is owned by the worker and
// reused for its next query, so it is valid only for the duration of the
// callback — copy it (append([]sofa.Result(nil), res...)) to retain.
// Callbacks must not call Submit or Close on the same stream.
func (x *Index) NewStream(workers int, handle func(qid uint64, res []Result, err error)) (*Stream, error) {
	if handle == nil {
		return nil, fmt.Errorf("%w: stream handler must not be nil", ErrBadConfig)
	}
	// The core default k is irrelevant: every public submission goes through
	// SubmitPlan with its own validated plan.
	st, err := x.ix.Collection().NewStream(1, workers, handle)
	if err != nil {
		// Both %w: errors.Is finds the sentinel and the engine's cause.
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	return &Stream{x: x, st: st}, nil
}

// Submit enqueues one query and returns the id later passed to the handler.
// The query series is copied before Submit returns, so the caller may reuse
// its slice immediately. Submit blocks while the bounded channel is full,
// and returns ErrStreamClosed after Close. Safe to call from many
// goroutines at once.
//
// A query with a Deadline option whose deadline passes while it waits in
// the queue is answered with context.DeadlineExceeded instead of being
// executed — expired work is shed, not served late.
func (st *Stream) Submit(q Query) (uint64, error) {
	p, err := st.x.plan(q)
	if err != nil {
		return 0, err
	}
	id, err := st.st.SubmitPlan(q.Series, p)
	if err != nil {
		if errors.Is(err, core.ErrStreamClosed) {
			return 0, ErrStreamClosed
		}
		return 0, err
	}
	return id, nil
}

// SetWatchdog bounds how long Submit may wait for a worker to accept a
// query once the bounded channel is full before failing with
// ErrStreamStalled — the guard against a hung worker pool (a stuck shard, a
// livelocked callback) propagating its stall to every submitter. Streams
// start with a 30-second deadline; d = 0 disables the watchdog (Submit
// blocks indefinitely, the pure-backpressure behavior). Safe to call
// concurrently with submits; in-flight waits keep the deadline they started
// with.
func (st *Stream) SetWatchdog(d time.Duration) { st.st.SetWatchdog(d) }

// Close stops accepting submissions, waits for every in-flight query's
// callback to complete, and releases the workers. Close is idempotent.
func (st *Stream) Close() { st.st.Close() }
