package repro

// TestStaticAnalysisSuite runs the full sofa-vet analyzer suite over the
// module as part of the ordinary test run, so `go test ./...` enforces the
// same invariants CI's static-analysis job does: audited pooled-slice
// callers (retainaudit), guarded fault-injection hooks (faultguard), the
// public API import boundary (importboundary), atomic field discipline
// (atomicfield), sentinel error wrapping at the sofa boundary (senterr),
// and the hot path's escape budget (noheap). These analyzers replaced the
// ad-hoc AST-walk audits that used to live at the repo root; run
// `go run ./cmd/sofa-vet ./...` for the same check from the command line.

import (
	"testing"

	"repro/internal/analysis"
)

func TestStaticAnalysisSuite(t *testing.T) {
	diags, err := analysis.Run(analysis.Suite(""), ".", []string{"./..."}, "")
	if err != nil {
		t.Fatalf("static analysis suite failed to run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
